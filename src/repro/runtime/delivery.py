"""Delivery backends: the communication-phase layer of the engine.

The engine's round structure (who advances when, which inbox a message
lands in) is the round model's business (:mod:`repro.runtime.models`);
*how* a validated round of traffic is turned into inbox contents and
metering totals is this module's.  A :class:`DeliveryBackend` owns exactly
two operations:

* :meth:`~DeliveryBackend.validate_omissions` — reject an omission
  schedule whose indices are out of range or touch no faulty process
  (raising :class:`~repro.runtime.network.AdversaryProtocolError`);
* :meth:`~DeliveryBackend.deliver` — place the surviving copies into
  per-recipient inboxes and report the delivered/lost totals.

Two implementations exist, selected by capability at network construction
(:func:`make_backend`), not by branches inside the engine loop:

* :class:`ObjectDeliveryBackend` — the reference object-per-copy loop.
  Works on any batch, including hand-built, non-sender-sorted ones.
* :class:`ColumnarDeliveryBackend` — the numpy-vectorized path
  (:func:`repro.runtime.columnar.plan_delivery`): omissions as keep
  masks, inbox assembly as a grouped scatter, lazy ``Message`` views.
  Requires sender-sorted batches (always true for engine-built rounds);
  hand-built unsorted batches fall back to the object loop.

Both backends implement the metering identity and precedence pinned in
:mod:`repro.runtime.metrics` — ``sent = delivered + omitted + lost``
with *omitted beats lost* — and produce byte-identical inboxes, orders,
and counters (certified by the multicast × columnar differential grid in
``tests/test_columnar.py``).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence, Set
from typing import NamedTuple, cast

from .columnar import FanoutCache, first_illegal_omission, plan_delivery
from .messages import Message, MessageBatch, MessageRecord, Multicast


class DeliveryReceipt(NamedTuple):
    """What one delivery step accomplished, for metering and observers.

    ``delivered`` reached a live recipient's inbox; ``lost`` survived the
    adversary but its recipient had already terminated.  The bit totals
    are accumulated while the backend expands the batch so the
    :class:`~repro.runtime.observers.MetricsObserver` does not need a
    second O(copies) pass.
    """

    delivered: Sequence[Message]
    lost: Sequence[Message]
    delivered_bits: int
    lost_bits: int


def _raise_illegal(total: int, index: int, sender: int, recipient: int,
                   out_of_range: bool) -> None:
    from .network import AdversaryProtocolError

    if out_of_range:
        raise AdversaryProtocolError(
            f"omit index {index} out of range "
            f"({total} messages this round)"
        )
    raise AdversaryProtocolError(
        "omissions are only allowed on messages to/from "
        f"faulty processes; message {sender}->{recipient} "
        "touches none"
    )


class DeliveryBackend:
    """One communication-phase implementation (see the module docstring).

    Backends are stateless between rounds apart from shared caches; a
    network owns exactly one backend for its lifetime.
    """

    name = "abstract"

    def validate_omissions(
        self, batch: MessageBatch, omit: Sequence[int], faulty: Set[int]
    ) -> None:
        """Raise :class:`AdversaryProtocolError` on an illegal schedule.

        ``omit`` is already canonical (sorted, de-duplicated); canonical
        order guarantees every backend names the *same* offending index.
        """
        raise NotImplementedError

    def deliver(
        self,
        batch: MessageBatch,
        omitted: Sequence[int],
        inboxes: list[Sequence[Message]],
        live: Sequence[bool] | None,
    ) -> DeliveryReceipt:
        """Place surviving copies into ``inboxes``, in sender-sorted order.

        ``live[pid]`` is False for terminated recipients; ``None`` means
        every process is live (the common case, enabling fast paths).
        """
        raise NotImplementedError


class ObjectDeliveryBackend(DeliveryBackend):
    """The reference object-per-copy delivery loop.

    Engine-built batches are already in ascending-sender order (the
    local-computation phase advances processes in pid order), so the
    legacy per-round sender bucketing reduces to a straight scan; a
    stable record sort restores the invariant for hand-built outboxes.
    Multicast records materialize one :class:`Message` view per surviving
    copy here — the only place the fan-out is expanded on the object
    path.

    Metering precedence is the engine-wide rule pinned in
    :mod:`repro.runtime.metrics`: the omission check runs *before* the
    recipient-liveness check, so a copy that is both adversary-omitted
    and addressed to a terminated recipient counts as omitted, never as
    lost — ``sent = delivered + omitted + lost`` holds exactly, every
    round, on every engine path.
    """

    name = "object"

    def validate_omissions(
        self, batch: MessageBatch, omit: Sequence[int], faulty: Set[int]
    ) -> None:
        total = len(batch)
        for index in omit:
            if not 0 <= index < total:
                _raise_illegal(total, index, -1, -1, out_of_range=True)
            sender, recipient = batch.endpoints_at(index)
            if sender not in faulty and recipient not in faulty:
                _raise_illegal(
                    total, index, sender, recipient, out_of_range=False
                )

    def deliver(
        self,
        batch: MessageBatch,
        omitted: Sequence[int],
        inboxes: list[Sequence[Message]],
        live: Sequence[bool] | None,
    ) -> DeliveryReceipt:
        omitted_set = set(omitted)
        delivered: list[Message] = []
        lost: list[Message] = []
        delivered_bits = 0
        lost_bits = 0
        # On the object path every inbox slot holds a plain list (reset by
        # the execution core's advance); the Sequence-typed slot only
        # widens for the columnar path's lazy views.
        boxes = cast("list[list[Message]]", inboxes)
        delivered_append = delivered.append
        make_message = Message

        pairs: Iterable[tuple[MessageRecord, int]]
        if batch.sender_sorted:
            pairs = zip(batch.records, batch.offsets)
        else:
            pairs = sorted(
                zip(batch.records, batch.offsets),
                key=lambda pair: pair[0].sender,
            )
        # Fast path: nothing omitted and every recipient still live — the
        # overwhelmingly common round shape.
        clean = not omitted_set and live is None

        for record, base in pairs:
            if type(record) is Multicast:
                sender = record.sender
                payload = record.payload
                bits = record.bits
                recipients = record.recipients
                if clean:
                    copies = [
                        make_message(sender, recipient, payload, bits)
                        for recipient in recipients
                    ]
                    for message, recipient in zip(copies, recipients):
                        boxes[recipient].append(message)
                    delivered.extend(copies)
                    delivered_bits += bits * len(recipients)
                    continue
                for position, recipient in enumerate(recipients):
                    if base + position in omitted_set:
                        # Omitted wins over lost: skipped before the
                        # liveness check (see repro.runtime.metrics).
                        continue
                    message = make_message(sender, recipient, payload, bits)
                    if live is not None and not live[recipient]:
                        # Recipient already terminated; the message is lost
                        # and counts in neither delivered counter.
                        lost.append(message)
                        lost_bits += bits
                    else:
                        boxes[recipient].append(message)
                        delivered_append(message)
                        delivered_bits += bits
            else:
                message = cast(Message, record)
                if not clean:
                    if base in omitted_set:
                        continue
                    if live is not None and not live[message.recipient]:
                        lost.append(message)
                        lost_bits += message.bits
                        continue
                boxes[message.recipient].append(message)
                delivered_append(message)
                delivered_bits += message.bits

        return DeliveryReceipt(delivered, lost, delivered_bits, lost_bits)


class ColumnarDeliveryBackend(DeliveryBackend):
    """The numpy-vectorized communication phase.

    One :func:`repro.runtime.columnar.plan_delivery` call replaces the
    per-copy Python loop: inboxes become lazy
    :class:`~repro.runtime.columnar.LazyMessageList` views that
    materialize :class:`Message` objects only when a program or observer
    actually reads them.  Flat-index order, metering precedence (omitted
    wins over lost), and every observer-visible sequence are identical to
    the object path.

    Capability gate: the grouped scatter assumes ascending-sender flat
    order, so non-sender-sorted (hand-built) batches are handed to the
    object backend instead.
    """

    name = "columnar"

    def __init__(self, fanout_cache: FanoutCache | None = None) -> None:
        # Fan-out tuples already converted to index arrays, shared across
        # rounds (ProcessEnv.broadcast caches its fan-out tuple per
        # process, so the same tuple objects recur every round) and with
        # the validation pass of the same round via the batch's own
        # column cache.
        self.fanout_cache: FanoutCache = (
            fanout_cache if fanout_cache is not None else {}
        )
        self._fallback = ObjectDeliveryBackend()

    def validate_omissions(
        self, batch: MessageBatch, omit: Sequence[int], faulty: Set[int]
    ) -> None:
        total = len(batch)
        if not total:
            # Nothing to vectorize over; the scalar range check names the
            # same offending index the vectorized path would.
            self._fallback.validate_omissions(batch, omit, faulty)
            return
        offender = first_illegal_omission(
            batch.columns(self.fanout_cache),
            omit,
            frozenset(faulty),
        )
        if offender is not None:
            kind, index, sender, recipient = offender
            _raise_illegal(
                total, index, sender, recipient, out_of_range=kind == "range"
            )

    def deliver(
        self,
        batch: MessageBatch,
        omitted: Sequence[int],
        inboxes: list[Sequence[Message]],
        live: Sequence[bool] | None,
    ) -> DeliveryReceipt:
        if not batch.sender_sorted:
            return self._fallback.deliver(batch, omitted, inboxes, live)
        plan = plan_delivery(
            batch.columns(self.fanout_cache),
            omitted,
            None if live is None else list(live),
        )
        for recipient, view in plan.inboxes:
            inboxes[recipient] = view
        return DeliveryReceipt(
            plan.delivered, plan.lost, plan.delivered_bits, plan.lost_bits
        )


def make_backend(
    columnar: bool, fanout_cache: FanoutCache | None = None
) -> DeliveryBackend:
    """Backend for a resolved ``columnar`` capability flag.

    The flag itself is resolved by :class:`~repro.runtime.network
    .SyncNetwork` (``None`` → numpy availability), which keeps the
    historical ``repro.runtime.network.HAVE_NUMPY`` knob authoritative.
    """
    if columnar:
        return ColumnarDeliveryBackend(fanout_cache)
    return ObjectDeliveryBackend()
