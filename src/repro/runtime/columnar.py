"""Columnar (numpy-vectorized) round representation for the engine.

The object engine spends its rounds making Python objects: one
:class:`Message` per multicast copy at delivery time, one list append per
inbox entry, one ``set`` probe per omit index.  At n=512 an all-to-all
round is ~260k copies, so even the PR 4 fast path (which already sizes and
queues broadcasts per *record*) tops out on per-copy Python work in
``_deliver``.

This module re-expresses a round's outbound batch as contiguous arrays —
the *columnar* layout — so the communication phase becomes a handful of
vectorized index operations:

* :class:`ColumnarBatch` — per-record vectors (sender id, fan-out count,
  per-copy bit size) with multicast fan-out stored as offset ranges into
  one flat ``copy_recipient`` vector; per-copy columns (``copy_sender``,
  ``copy_bits``, ``copy_record``) are derived lazily by ``np.repeat`` when
  a consumer actually needs them.  Payloads stay Python objects, indexed
  per record (the payload table) — they are never copied or inspected.
* :func:`plan_delivery` — the whole communication phase as array math:
  adversary omissions become a boolean mask over flat copy indices,
  terminated-recipient filtering an index select against a liveness
  vector, and inbox assembly a grouped scatter (stable argsort by
  recipient, then boundary slicing).  Returns a :class:`DeliveryPlan`.
* :class:`LazyMessageList` — a ``Sequence[Message]`` view over a set of
  flat copy indices.  Inboxes and the observer-facing delivered/lost
  lists are these views: per-copy :class:`Message` objects materialize
  only when a program or observer actually reads them, and a process that
  ignores its inbox never pays for it.
* :func:`first_illegal_omission` — the engine's omission legality check
  (range + faulty-incidence) as two vectorized membership tests, matching
  the scalar validator index-for-index.

Everything here is *representation only*: flat copy indices, sender-sorted
inbox order, and every :class:`Metrics` counter are identical to the
object engine's, which is what lets record/replay fingerprints certify the
two paths byte-for-byte against each other (``tests/test_columnar.py``).

numpy is an optional dependency: when it is missing, :data:`HAVE_NUMPY`
is False and :class:`~repro.runtime.network.SyncNetwork` silently keeps
the object path.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator, Sequence
from typing import Any, overload

from .messages import Message, MessageBatch, Multicast

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is optional
    np = None  # type: ignore[assignment]

#: Whether the columnar engine is available in this environment.
HAVE_NUMPY = np is not None

#: Cache of fan-out tuples already converted to arrays, keyed by tuple
#: identity.  ``ProcessEnv.broadcast`` caches its fan-out tuple per
#: process, so across rounds the same tuple objects recur; holding a
#: strong reference to the tuple keeps its ``id`` valid for the cache's
#: lifetime (one cache per network).
FanoutCache = dict[int, tuple[tuple[int, ...], Any]]


class ColumnarBatch:
    """One round's outbound traffic as contiguous vectors.

    Built from a :class:`MessageBatch`'s records; the batch caches the
    result, so the arrays are constructed at most once per round however
    many consumers (validation, delivery, materialization) touch them.
    """

    __slots__ = (
        "records",
        "rec_sender",
        "rec_count",
        "rec_bits",
        "copy_recipient",
        "total_copies",
        "_rec_offset",
        "_copy_sender",
        "_copy_bits",
        "_copy_record",
        "_all_copies",
    )

    def __init__(
        self,
        records: list[Message | Multicast],
        rec_sender: Any,
        rec_count: Any,
        rec_bits: Any,
        copy_recipient: Any,
    ) -> None:
        self.records = records
        self.rec_sender = rec_sender
        self.rec_count = rec_count
        self.rec_bits = rec_bits
        self.copy_recipient = copy_recipient
        self.total_copies = int(copy_recipient.shape[0])
        self._rec_offset: Any = None
        self._copy_sender: Any = None
        self._copy_bits: Any = None
        self._copy_record: Any = None
        self._all_copies: Any = None

    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: list[Message | Multicast],
        fanout_cache: FanoutCache | None = None,
    ) -> ColumnarBatch:
        """Vectorize a record list (requires :data:`HAVE_NUMPY`).

        Runs of consecutive point-to-point records are converted in one
        array each; multicast fan-out tuples go through ``fanout_cache``
        so a per-round broadcast whose (cached) recipient tuple recurs
        every round converts exactly once per network.
        """
        count = len(records)
        # Pids fit comfortably in int32; the narrower dtype makes the
        # per-round stable argsort in :func:`plan_delivery` measurably
        # faster at large n (and halves the resident column size).
        rec_sender = np.empty(count, dtype=np.int32)
        rec_count = np.empty(count, dtype=np.int64)
        rec_bits = np.empty(count, dtype=np.int64)
        chunks: list[Any] = []
        run: list[int] = []
        for position, record in enumerate(records):
            rec_sender[position] = record.sender
            rec_bits[position] = record.bits
            if type(record) is Multicast:
                if run:
                    chunks.append(np.array(run, dtype=np.int32))
                    run = []
                recipients = record.recipients
                rec_count[position] = len(recipients)
                if fanout_cache is not None:
                    cached = fanout_cache.get(id(recipients))
                    if cached is None or cached[0] is not recipients:
                        cached = (
                            recipients,
                            np.array(recipients, dtype=np.int32),
                        )
                        fanout_cache[id(recipients)] = cached
                    chunks.append(cached[1])
                else:
                    chunks.append(np.array(recipients, dtype=np.int32))
            else:
                rec_count[position] = 1
                run.append(record.recipient)
        if run:
            chunks.append(np.array(run, dtype=np.int32))
        copy_recipient = (
            np.concatenate(chunks)
            if chunks
            else np.empty(0, dtype=np.int32)
        )
        return cls(records, rec_sender, rec_count, rec_bits, copy_recipient)

    # ------------------------------------------------------------------
    # Lazily derived per-copy columns.
    @property
    def rec_offset(self) -> Any:
        """Flat index of each record's first copy (exclusive cumsum)."""
        if self._rec_offset is None:
            offsets = np.empty(len(self.records), dtype=np.int64)
            if offsets.shape[0]:
                offsets[0] = 0
                np.cumsum(self.rec_count[:-1], out=offsets[1:])
            self._rec_offset = offsets
        return self._rec_offset

    @property
    def copy_sender(self) -> Any:
        if self._copy_sender is None:
            self._copy_sender = np.repeat(self.rec_sender, self.rec_count)
        return self._copy_sender

    @property
    def copy_bits(self) -> Any:
        if self._copy_bits is None:
            self._copy_bits = np.repeat(self.rec_bits, self.rec_count)
        return self._copy_bits

    @property
    def copy_record(self) -> Any:
        """Record position owning each flat copy (the payload-table key)."""
        if self._copy_record is None:
            self._copy_record = np.repeat(
                np.arange(len(self.records), dtype=np.int64), self.rec_count
            )
        return self._copy_record

    @property
    def all_copies(self) -> Any:
        """``arange(total_copies)`` — the identity index vector."""
        if self._all_copies is None:
            self._all_copies = np.arange(self.total_copies, dtype=np.int64)
        return self._all_copies

    def total_bits(self) -> int:
        """Sum of per-copy bits over the batch, from the record vectors."""
        return int(self.rec_bits @ self.rec_count)


class LazyMessageList(Sequence[Message]):
    """``Sequence[Message]`` over a vector of flat copy indices.

    The columnar engine hands these out as inboxes and as the observer
    hook's delivered/lost lists.  ``len``/truthiness are O(1) and touch no
    objects; the first element access materializes the full list once (the
    same per-copy cost the object engine paid unconditionally) and caches
    it, so repeated reads stay list-speed.
    """

    __slots__ = ("_cols", "_indices", "_items")

    def __init__(self, cols: ColumnarBatch, indices: Any = None) -> None:
        # ``indices=None`` means *every* copy in the batch — the clean
        # all-to-all round — without materializing an identity arange.
        self._cols = cols
        self._indices = indices
        self._items: list[Message] | None = None

    def _materialize(self) -> list[Message]:
        # The designated per-copy materialization point of the columnar
        # engine (REP007): the only place flat indices become Message
        # objects, entered only when a consumer actually reads.
        items = self._items
        if items is None:
            cols = self._cols
            records = cols.records
            indices = self._indices
            if indices is None:
                record_positions = cols.copy_record.tolist()
                recipients = cols.copy_recipient.tolist()
            else:
                record_positions = cols.copy_record[indices].tolist()
                recipients = cols.copy_recipient[indices].tolist()
            items = [
                Message(record.sender, recipient, record.payload, record.bits)
                for record, recipient in zip(
                    map(records.__getitem__, record_positions), recipients
                )
            ]
            self._items = items
        return items

    def __len__(self) -> int:
        if self._indices is None:
            return self._cols.total_copies
        return int(self._indices.shape[0])

    @overload
    def __getitem__(self, index: int) -> Message: ...

    @overload
    def __getitem__(self, index: slice) -> list[Message]: ...

    def __getitem__(self, index: int | slice) -> Message | list[Message]:
        return self._materialize()[index]

    def __iter__(self) -> Iterator[Message]:
        return iter(self._materialize())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LazyMessageList({len(self)} copies)"


_EMPTY: tuple[Message, ...] = ()


@dataclass(slots=True)
class DeliveryPlan:
    """Everything ``_deliver`` needs, computed in one vectorized pass.

    ``inboxes`` pairs each recipient that received traffic with its (lazy)
    inbox, in ascending recipient order; ``delivered``/``lost`` are the
    observer-facing per-copy sequences in flat index order — exactly the
    order the object engine appends them in.
    """

    inboxes: list[tuple[int, Sequence[Message]]]
    delivered: Sequence[Message]
    lost: Sequence[Message]
    delivered_bits: int
    lost_bits: int


def plan_delivery(
    cols: ColumnarBatch,
    omitted: Sequence[int],
    live: Sequence[bool] | None,
) -> DeliveryPlan:
    """Compute one communication phase over the columnar batch.

    ``omitted`` holds validated flat copy indices (canonical: sorted,
    de-duplicated); ``live`` is the per-pid liveness vector, or None when
    every process is still live.  Omission precedence is the engine-wide
    rule (see ``repro.runtime.metrics``): a copy that is both omitted and
    addressed to a terminated recipient counts as omitted, never as lost.
    """
    total = cols.total_copies
    if not omitted and live is None:
        # Clean round: everything sent is delivered.  ``None`` stands for
        # the identity index vector so neither an arange nor a gather is
        # paid; the grouped scatter sorts ``copy_recipient`` directly.
        delivered = None
        lost = None
        delivered_bits = cols.total_bits()
        lost_bits = 0
    else:
        keep = np.ones(total, dtype=bool)
        if omitted:
            keep[np.fromiter(omitted, dtype=np.int64, count=len(omitted))] = (
                False
            )
        if live is not None:
            recipient_live = np.asarray(live, dtype=bool)[
                cols.copy_recipient
            ]
            delivered = np.flatnonzero(keep & recipient_live)
            lost = np.flatnonzero(keep & ~recipient_live)
        else:
            delivered = np.flatnonzero(keep)
            lost = delivered[:0]
        copy_bits = cols.copy_bits
        delivered_bits = int(copy_bits[delivered].sum())
        lost_bits = int(copy_bits[lost].sum())

    inboxes: list[tuple[int, Sequence[Message]]] = []
    if delivered is None:
        recipients = cols.copy_recipient
        grouped = None
    elif delivered.shape[0]:
        recipients = cols.copy_recipient[delivered]
        grouped = delivered
    else:
        recipients = None
        grouped = None
    if recipients is not None and recipients.shape[0]:
        # Grouped scatter: stable sort by recipient keeps flat-index order
        # inside each group, which is the engine's sender-sorted inbox
        # contract (engine batches are sender-sorted, so flat order is
        # sender order).
        order = np.argsort(recipients, kind="stable")
        grouped = order if grouped is None else grouped[order]
        grouped_recipients = recipients[order]
        boundaries = np.flatnonzero(
            grouped_recipients[1:] != grouped_recipients[:-1]
        )
        starts = np.empty(boundaries.shape[0] + 1, dtype=np.int64)
        starts[0] = 0
        starts[1:] = boundaries + 1
        ends = np.empty_like(starts)
        ends[:-1] = starts[1:]
        ends[-1] = grouped.shape[0]
        owners = grouped_recipients[starts].tolist()
        for owner, start, end in zip(
            owners, starts.tolist(), ends.tolist()
        ):
            inboxes.append(
                (int(owner), LazyMessageList(cols, grouped[start:end]))
            )

    if delivered is None:
        delivered_view: Sequence[Message] = (
            LazyMessageList(cols) if total else _EMPTY
        )
    else:
        delivered_view = (
            LazyMessageList(cols, delivered) if delivered.shape[0] else _EMPTY
        )
    lost_view: Sequence[Message] = (
        LazyMessageList(cols, lost)
        if lost is not None and lost.shape[0]
        else _EMPTY
    )
    return DeliveryPlan(
        inboxes=inboxes,
        delivered=delivered_view,
        lost=lost_view,
        delivered_bits=delivered_bits,
        lost_bits=lost_bits,
    )


def first_illegal_omission(
    cols: ColumnarBatch,
    omit_sorted: Sequence[int],
    faulty: frozenset[int],
) -> tuple[str, int, int, int] | None:
    """Vectorized legality check over canonical (sorted) omit indices.

    Mirrors the scalar validator exactly: scanning the sorted indices,
    each is first range-checked, then faulty-incidence-checked.  Returns
    ``None`` when all are legal, else ``(kind, index, sender, recipient)``
    for the first offender — ``kind`` is ``"range"`` (sender/recipient
    are -1) or ``"endpoints"``.
    """
    indices = np.fromiter(
        omit_sorted, dtype=np.int64, count=len(omit_sorted)
    )
    in_range = (indices >= 0) & (indices < cols.total_copies)
    safe = np.where(in_range, indices, 0)
    senders = cols.copy_sender[safe]
    recipients = cols.copy_recipient[safe]
    if faulty:
        faulty_array = np.fromiter(
            faulty, dtype=np.int64, count=len(faulty)
        )
        touches_faulty = np.isin(senders, faulty_array) | np.isin(
            recipients, faulty_array
        )
    else:
        touches_faulty = np.zeros(indices.shape[0], dtype=bool)
    bad = ~(in_range & touches_faulty)
    if not bad.any():
        return None
    position = int(np.argmax(bad))
    index = int(indices[position])
    if not in_range[position]:
        return ("range", index, -1, -1)
    return (
        "endpoints",
        index,
        int(senders[position]),
        int(recipients[position]),
    )


def columns_for(
    batch: MessageBatch, fanout_cache: FanoutCache | None = None
) -> ColumnarBatch:
    """Build (or fetch the cached) :class:`ColumnarBatch` for *batch*."""
    return batch.columns(fanout_cache)


__all__ = [
    "HAVE_NUMPY",
    "ColumnarBatch",
    "DeliveryPlan",
    "FanoutCache",
    "LazyMessageList",
    "columns_for",
    "first_illegal_omission",
    "plan_delivery",
]
