"""Structured execution tracing.

A :class:`TraceRecorder` is a :class:`RoundObserver`: attach it to a
:class:`SyncNetwork` (``network.add_observer(recorder)``, or the classic
``recorder.attach(network)``) and it records one :class:`RoundTrace` per
round: traffic, omissions, corruptions, decisions, and a configurable
sample of process state (by default the Algorithm-1 ``b`` / ``operative``
/ ``decided`` triple).  It observes the validated adversary action through
the engine's native ``on_adversary_action`` hook — no wrapping of the
adversary, no effect on the run.  Traces power the diagnostics example and
the regression tests that assert *when* things happened, not just final
outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

from .network import AdversaryAction, NetworkView, SyncNetwork
from .observers import RoundObserver
from .process import SyncProcess


@dataclass(frozen=True)
class RoundTrace:
    """Everything that happened in one round."""

    round: int
    messages_sent: int
    bits_sent: int
    messages_omitted: int
    newly_corrupted: tuple[int, ...]
    newly_decided: tuple[int, ...]
    #: Optional per-process state sample (pid -> snapshot).
    state_sample: dict[int, Any] = field(default_factory=dict)


def default_state_probe(process: SyncProcess) -> Any:
    """Snapshot the Algorithm-1-style public state, if present."""
    keys = ("b", "operative", "decided", "epoch", "phase")
    snapshot = {
        key: getattr(process, key)
        for key in keys
        if hasattr(process, key)
    }
    return snapshot or None


class TraceRecorder(RoundObserver):
    """Collects :class:`RoundTrace` records from a network run.

    Usage::

        recorder = TraceRecorder()
        network = recorder.attach(SyncNetwork(processes, adversary=..., t=t))
        result = network.run()
        recorder.rounds[3].newly_corrupted

    ``probe``: callable mapping a process to a state snapshot (None to skip
    that process); ``sample_every``: only store snapshots every k rounds to
    bound memory on long runs.
    """

    def __init__(
        self,
        probe: Callable[[SyncProcess], Any] | None = default_state_probe,
        sample_every: int = 1,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.probe = probe
        self.sample_every = sample_every
        self.rounds: list[RoundTrace] = []
        self._pending_action: AdversaryAction | None = None
        self._known_decided: set[int] = set()

    # ------------------------------------------------------------------
    def attach(self, network: SyncNetwork) -> SyncNetwork:
        """Wire this recorder into the network; returns the same network."""
        return network.add_observer(self)

    # ------------------------------------------------------------------
    # RoundObserver hooks.
    def on_adversary_action(
        self,
        round_no: int,
        view: NetworkView,
        action: AdversaryAction,
        network: SyncNetwork,
    ) -> None:
        self._pending_action = AdversaryAction(
            corrupt=frozenset(action.corrupt) - view.faulty,
            omit=action.omit,
        )

    def on_round_end(self, round_no: int, network: SyncNetwork) -> None:
        action = self._pending_action or AdversaryAction.nothing()
        self._pending_action = None

        decided_now = []
        for env in network.envs:
            if env.has_decided and env.pid not in self._known_decided:
                self._known_decided.add(env.pid)
                decided_now.append(env.pid)

        sample: dict[int, Any] = {}
        if self.probe is not None and round_no % self.sample_every == 0:
            for process in network.processes:
                snapshot = self.probe(process)
                if snapshot is not None:
                    sample[process.pid] = snapshot

        metrics = network.metrics
        self.rounds.append(
            RoundTrace(
                round=round_no,
                messages_sent=metrics.messages_per_round[round_no],
                bits_sent=metrics.bits_per_round[round_no],
                messages_omitted=len(action.omit),
                newly_corrupted=tuple(sorted(action.corrupt)),
                newly_decided=tuple(sorted(decided_now)),
                state_sample=sample,
            )
        )

    # ------------------------------------------------------------------
    # Queries used by diagnostics and tests.
    def corruption_rounds(self) -> dict[int, int]:
        """pid -> round in which the adversary corrupted it."""
        schedule: dict[int, int] = {}
        for trace in self.rounds:
            for pid in trace.newly_corrupted:
                schedule.setdefault(pid, trace.round)
        return schedule

    def decision_rounds(self) -> dict[int, int]:
        """pid -> round in which it decided, as observed by the per-round
        hook.  Decisions made in a run's terminal local-computation phase
        (after the last communication round) are not part of any traced
        round; use ``ExecutionResult.decision_rounds`` for the complete
        map."""
        schedule: dict[int, int] = {}
        for trace in self.rounds:
            for pid in trace.newly_decided:
                schedule.setdefault(pid, trace.round)
        return schedule

    def total_omissions(self) -> int:
        return sum(trace.messages_omitted for trace in self.rounds)

    def traffic_profile(self) -> list[tuple[int, int]]:
        """(round, messages) series — the per-round traffic shape."""
        return [(trace.round, trace.messages_sent) for trace in self.rounds]

    def operative_series(self) -> list[tuple[int, int]]:
        """(round, #operative) series when the probe captured it."""
        series = []
        for trace in self.rounds:
            if not trace.state_sample:
                continue
            operative = sum(
                1
                for snapshot in trace.state_sample.values()
                if isinstance(snapshot, dict) and snapshot.get("operative")
            )
            series.append((trace.round, operative))
        return series
