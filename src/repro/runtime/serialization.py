"""JSON serialization of execution results and traces.

Long experiment campaigns want to run once and analyze offline;
this module round-trips the substrate's result objects through plain JSON:

* :func:`result_to_dict` / :func:`result_from_dict` — full
  :class:`ExecutionResult` fidelity (metrics, decisions, faulty set,
  per-process randomness, decision rounds);
* :func:`trace_to_dict` — a :class:`TraceRecorder`'s round records
  (one-way: traces are diagnostic output, not protocol state);
* :func:`save_result` / :func:`load_result` — file helpers.

Decision values are JSON-encoded as-is, so protocols whose decisions are
ints/strings/lists round-trip exactly; tuples come back as lists (JSON has
no tuple type) — normalize in the protocol if that distinction matters.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .metrics import Metrics
from .network import ExecutionResult
from .trace import TraceRecorder

FORMAT_VERSION = 1


def metrics_to_dict(metrics: Metrics) -> dict[str, Any]:
    """Serialize a :class:`Metrics` (including the per-round series)."""
    return {
        "rounds": metrics.rounds,
        "messages_sent": metrics.messages_sent,
        "messages_delivered": metrics.messages_delivered,
        "messages_omitted": metrics.messages_omitted,
        "messages_lost": metrics.messages_lost,
        "bits_sent": metrics.bits_sent,
        "bits_delivered": metrics.bits_delivered,
        "bits_lost": metrics.bits_lost,
        "random_calls": metrics.random_calls,
        "random_bits": metrics.random_bits,
        "messages_per_round": list(metrics.messages_per_round),
        "bits_per_round": list(metrics.bits_per_round),
    }


def metrics_from_dict(data: dict[str, Any]) -> Metrics:
    metrics = Metrics(
        rounds=data["rounds"],
        messages_sent=data["messages_sent"],
        messages_delivered=data["messages_delivered"],
        messages_omitted=data["messages_omitted"],
        # Absent in files written before the lost-traffic counters existed.
        messages_lost=data.get("messages_lost", 0),
        bits_sent=data["bits_sent"],
        bits_delivered=data["bits_delivered"],
        bits_lost=data.get("bits_lost", 0),
        random_calls=data["random_calls"],
        random_bits=data["random_bits"],
    )
    metrics.messages_per_round = list(data["messages_per_round"])
    metrics.bits_per_round = list(data["bits_per_round"])
    return metrics


def result_to_dict(result: ExecutionResult) -> dict[str, Any]:
    """Serialize an :class:`ExecutionResult` to JSON-safe primitives."""
    return {
        "format_version": FORMAT_VERSION,
        "n": result.n,
        "decisions": {str(pid): value for pid, value in result.decisions.items()},
        "metrics": metrics_to_dict(result.metrics),
        "faulty": sorted(result.faulty),
        "all_terminated": result.all_terminated,
        "rounds": result.rounds,
        "randomness_per_process": [
            list(pair) for pair in result.randomness_per_process
        ],
        "decision_rounds": {
            str(pid): round_no
            for pid, round_no in result.decision_rounds.items()
        },
    }


def result_from_dict(data: dict[str, Any]) -> ExecutionResult:
    """Rebuild an :class:`ExecutionResult` from :func:`result_to_dict`."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {version!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
    return ExecutionResult(
        n=data["n"],
        decisions={int(pid): value for pid, value in data["decisions"].items()},
        metrics=metrics_from_dict(data["metrics"]),
        faulty=frozenset(data["faulty"]),
        all_terminated=data["all_terminated"],
        rounds=data["rounds"],
        randomness_per_process=[
            tuple(pair) for pair in data["randomness_per_process"]
        ],
        decision_rounds={
            int(pid): round_no
            for pid, round_no in data["decision_rounds"].items()
        },
    )


def trace_to_dict(recorder: TraceRecorder) -> dict[str, Any]:
    """Serialize a trace recorder's rounds (state samples must be
    JSON-safe, which the default probe's snapshots are)."""
    return {
        "format_version": FORMAT_VERSION,
        "rounds": [
            {
                "round": trace.round,
                "messages_sent": trace.messages_sent,
                "bits_sent": trace.bits_sent,
                "messages_omitted": trace.messages_omitted,
                "newly_corrupted": list(trace.newly_corrupted),
                "newly_decided": list(trace.newly_decided),
                "state_sample": {
                    str(pid): snapshot
                    for pid, snapshot in trace.state_sample.items()
                },
            }
            for trace in recorder.rounds
        ],
    }


def save_result(result: ExecutionResult, path: str | Path) -> None:
    """Write an execution result as JSON."""
    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2, sort_keys=True),
        encoding="utf-8",
    )


def load_result(path: str | Path) -> ExecutionResult:
    """Read an execution result written by :func:`save_result`."""
    return result_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )
