"""JSON serialization of execution results, traces, and recipes.

Long experiment campaigns want to run once and analyze offline;
this module round-trips the substrate's result objects through plain JSON:

* :func:`result_to_dict` / :func:`result_from_dict` — full
  :class:`ExecutionResult` fidelity (metrics, decisions, faulty set,
  per-process randomness, decision rounds);
* :func:`trace_to_dict` — a :class:`TraceRecorder`'s round records
  (one-way: traces are diagnostic output, not protocol state);
* :func:`recipe_to_dict` / :func:`recipe_from_dict` — the
  ``repro.replay`` :class:`~repro.replay.ExecutionRecipe` artifact;
* :func:`save_result` / :func:`load_result` — file helpers.

Every payload carries a ``"schema"`` field (:data:`SCHEMA_VERSION`).  The
readers accept the current schema plus the explicitly listed legacy
versions, and reject anything else with a :class:`ValueError` naming the
version — never a ``KeyError`` from a silently missing field.  Bump
:data:`SCHEMA_VERSION` whenever a payload's shape changes incompatibly.

Decision values are JSON-encoded as-is, so protocols whose decisions are
ints/strings/lists round-trip exactly; tuples come back as lists (JSON has
no tuple type) — normalize in the protocol if that distinction matters.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .metrics import Metrics
from .network import ExecutionResult
from .trace import TraceRecorder

#: Current schema version of every payload this module writes.
SCHEMA_VERSION = 2

#: The pre-``schema`` version tag (files written as ``format_version: 1``).
FORMAT_VERSION = 1


def check_schema(data: dict[str, Any], payload: str) -> int:
    """Return the payload's schema version, rejecting unknown ones.

    Accepts the current :data:`SCHEMA_VERSION` and the legacy
    ``format_version: 1`` tag; anything else (including an untagged dict)
    raises ``ValueError`` with the offending version spelled out.
    """
    version = data.get("schema", data.get("format_version"))
    if version == SCHEMA_VERSION:
        return SCHEMA_VERSION
    if version == FORMAT_VERSION:
        return FORMAT_VERSION
    raise ValueError(
        f"unsupported {payload} schema version {version!r} "
        f"(this build reads schema {SCHEMA_VERSION} and legacy "
        f"format_version {FORMAT_VERSION})"
    )


def metrics_to_dict(metrics: Metrics) -> dict[str, Any]:
    """Serialize a :class:`Metrics` (including the per-round series)."""
    return {
        "schema": SCHEMA_VERSION,
        "rounds": metrics.rounds,
        "messages_sent": metrics.messages_sent,
        "messages_delivered": metrics.messages_delivered,
        "messages_omitted": metrics.messages_omitted,
        "messages_lost": metrics.messages_lost,
        "bits_sent": metrics.bits_sent,
        "bits_delivered": metrics.bits_delivered,
        "bits_lost": metrics.bits_lost,
        "random_calls": metrics.random_calls,
        "random_bits": metrics.random_bits,
        "messages_per_round": list(metrics.messages_per_round),
        "bits_per_round": list(metrics.bits_per_round),
    }


def metrics_from_dict(data: dict[str, Any]) -> Metrics:
    if "schema" in data:
        check_schema(data, "metrics")
    metrics = Metrics(
        rounds=data["rounds"],
        messages_sent=data["messages_sent"],
        messages_delivered=data["messages_delivered"],
        messages_omitted=data["messages_omitted"],
        # Absent in files written before the lost-traffic counters existed.
        messages_lost=data.get("messages_lost", 0),
        bits_sent=data["bits_sent"],
        bits_delivered=data["bits_delivered"],
        bits_lost=data.get("bits_lost", 0),
        random_calls=data["random_calls"],
        random_bits=data["random_bits"],
    )
    metrics.messages_per_round = list(data["messages_per_round"])
    metrics.bits_per_round = list(data["bits_per_round"])
    return metrics


def result_to_dict(result: ExecutionResult) -> dict[str, Any]:
    """Serialize an :class:`ExecutionResult` to JSON-safe primitives."""
    return {
        "schema": SCHEMA_VERSION,
        "n": result.n,
        "decisions": {str(pid): value for pid, value in result.decisions.items()},
        "metrics": metrics_to_dict(result.metrics),
        "faulty": sorted(result.faulty),
        "all_terminated": result.all_terminated,
        "rounds": result.rounds,
        "randomness_per_process": [
            list(pair) for pair in result.randomness_per_process
        ],
        "decision_rounds": {
            str(pid): round_no
            for pid, round_no in result.decision_rounds.items()
        },
    }


def result_from_dict(data: dict[str, Any]) -> ExecutionResult:
    """Rebuild an :class:`ExecutionResult` from :func:`result_to_dict`."""
    check_schema(data, "result")
    return ExecutionResult(
        n=data["n"],
        decisions={int(pid): value for pid, value in data["decisions"].items()},
        metrics=metrics_from_dict(data["metrics"]),
        faulty=frozenset(data["faulty"]),
        all_terminated=data["all_terminated"],
        rounds=data["rounds"],
        randomness_per_process=[
            tuple(pair) for pair in data["randomness_per_process"]
        ],
        decision_rounds={
            int(pid): round_no
            for pid, round_no in data["decision_rounds"].items()
        },
    )


def trace_to_dict(recorder: TraceRecorder) -> dict[str, Any]:
    """Serialize a trace recorder's rounds (state samples must be
    JSON-safe, which the default probe's snapshots are)."""
    return {
        "schema": SCHEMA_VERSION,
        "rounds": [
            {
                "round": trace.round,
                "messages_sent": trace.messages_sent,
                "bits_sent": trace.bits_sent,
                "messages_omitted": trace.messages_omitted,
                "newly_corrupted": list(trace.newly_corrupted),
                "newly_decided": list(trace.newly_decided),
                "state_sample": {
                    str(pid): snapshot
                    for pid, snapshot in trace.state_sample.items()
                },
            }
            for trace in recorder.rounds
        ],
    }


def recipe_to_dict(recipe: Any) -> dict[str, Any]:
    """Serialize a ``repro.replay`` :class:`ExecutionRecipe` (schema-tagged).

    Thin indirection so every versioned artifact is writable from one
    module; the field layout lives with the recipe dataclass itself in
    :mod:`repro.replay.recipe`.
    """
    from ..replay.recipe import recipe_payload

    return recipe_payload(recipe)


def recipe_from_dict(data: dict[str, Any]) -> Any:
    """Rebuild an :class:`ExecutionRecipe` written by :func:`recipe_to_dict`.

    Rejects unknown schema versions with a clear ``ValueError``.
    """
    from ..replay.recipe import recipe_from_payload

    return recipe_from_payload(data)


def save_result(result: ExecutionResult, path: str | Path) -> None:
    """Write an execution result as JSON."""
    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2, sort_keys=True),
        encoding="utf-8",
    )


def load_result(path: str | Path) -> ExecutionResult:
    """Read an execution result written by :func:`save_result`."""
    return result_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )
