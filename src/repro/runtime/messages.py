"""Point-to-point messages and their bit-size accounting.

The paper's communication complexity is measured in *bits* sent over
point-to-point channels (Section 2).  Every payload handed to
:meth:`ProcessEnv.send` is sized by :func:`payload_bits` at send time so that
benchmark numbers are directly comparable with the paper's
``O(n^2 log^3 n)``-style bounds.

``payload_bits`` is the hottest function in large simulations, so it
dispatches on exact types with the common cases (ints, tuples of ints)
first; the semantics are unchanged from the reference recursive definition.
"""

from __future__ import annotations

from typing import Any

#: Flat per-message overhead charged on top of the payload, covering the
#: sender id and message framing.  One machine word keeps small control
#: messages from being counted as free.
MESSAGE_OVERHEAD_BITS = 8


def payload_bits(payload: Any) -> int:
    """Return the number of bits needed to encode ``payload``.

    Integers are charged their binary length (plus a sign bit), containers
    the sum of their elements plus a small per-element header.  The goal is a
    stable, implementation-independent accounting rule, not a wire format.
    """
    kind = type(payload)
    if kind is int:
        length = payload.bit_length()
        return (length if length else 1) + 1
    if kind is tuple or kind is list:
        total = 2
        for item in payload:
            item_kind = type(item)
            if item_kind is int:
                length = item.bit_length()
                total += (length if length else 1) + 2
            else:
                total += payload_bits(item) + 1
        return total
    if payload is None or kind is bool:
        return 1
    if kind is float:
        return 64
    if kind is str:
        return 8 * len(payload) + 8
    if kind is bytes or kind is bytearray:
        return 8 * len(payload) + 8
    if kind is set or kind is frozenset:
        return 2 + sum(payload_bits(item) + 1 for item in payload)
    if kind is dict:
        return 2 + sum(
            payload_bits(key) + payload_bits(value) + 1
            for key, value in payload.items()
        )
    if isinstance(payload, bool) or isinstance(payload, int):
        return payload_bits(int(payload))
    raise TypeError(
        f"cannot size payload of type {type(payload).__name__}; "
        "use ints, strings, bytes, or containers of those"
    )


class Message:
    """A single point-to-point message in one communication phase.

    Attributes
    ----------
    sender, recipient:
        Process ids in ``range(n)``.
    payload:
        Arbitrary (sizeable) protocol data; treated as immutable.
    bits:
        Size charged to the communication-bit complexity, including
        :data:`MESSAGE_OVERHEAD_BITS`.  Pass a precomputed value when the
        same payload fans out to many recipients.
    """

    __slots__ = ("sender", "recipient", "payload", "bits")

    def __init__(
        self, sender: int, recipient: int, payload: Any, bits: int = 0
    ) -> None:
        self.sender = sender
        self.recipient = recipient
        self.payload = payload
        self.bits = (
            bits if bits else payload_bits(payload) + MESSAGE_OVERHEAD_BITS
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(sender={self.sender}, recipient={self.recipient}, "
            f"payload={self.payload!r}, bits={self.bits})"
        )
