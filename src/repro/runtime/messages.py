"""Point-to-point messages, multicast records, and bit-size accounting.

The paper's communication complexity is measured in *bits* sent over
point-to-point channels (Section 2).  Every payload handed to
:meth:`ProcessEnv.send` is sized by :func:`payload_bits` at send time so that
benchmark numbers are directly comparable with the paper's
``O(n^2 log^3 n)``-style bounds.

``payload_bits`` is the hottest function in large simulations, so it
dispatches on exact types with the common cases (ints, tuples of ints)
first; the semantics are unchanged from the reference recursive definition.

The engine's broadcast fast path rides two further types defined here:

* :class:`Multicast` — one sender fanning a single shared payload (and a
  single precomputed ``bits`` value) out to many recipients, queued as one
  record instead of one :class:`Message` per recipient;
* :class:`MessageBatch` — a round's entire outbound traffic as a flat,
  lazily-expanded ``Sequence[Message]`` over a mix of :class:`Message` and
  :class:`Multicast` records.  Adversary omit indices address the flat
  per-copy positions, so multicast and per-message executions agree on
  every index, counter, and inbox byte-for-byte.
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING, Any, overload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from .columnar import ColumnarBatch, FanoutCache

#: Flat per-message overhead charged on top of the payload, covering the
#: sender id and message framing.  One machine word keeps small control
#: messages from being counted as free.
MESSAGE_OVERHEAD_BITS = 8


def payload_bits(payload: Any) -> int:
    """Return the number of bits needed to encode ``payload``.

    Integers are charged their binary length (plus a sign bit), containers
    the sum of their elements plus a small per-element header.  The goal is a
    stable, implementation-independent accounting rule, not a wire format.
    """
    kind = type(payload)
    if kind is int:
        length = payload.bit_length()
        return (length if length else 1) + 1
    if kind is tuple or kind is list:
        total = 2
        for item in payload:
            item_kind = type(item)
            if item_kind is int:
                length = item.bit_length()
                total += (length if length else 1) + 2
            else:
                total += payload_bits(item) + 1
        return total
    if payload is None or kind is bool:
        return 1
    if kind is float:
        return 64
    if kind is str:
        return 8 * len(payload) + 8
    if kind is bytes or kind is bytearray:
        return 8 * len(payload) + 8
    if kind is set or kind is frozenset:
        return 2 + sum(payload_bits(item) + 1 for item in payload)
    if kind is dict:
        return 2 + sum(
            payload_bits(key) + payload_bits(value) + 1
            for key, value in payload.items()
        )
    if isinstance(payload, bool) or isinstance(payload, int):
        return payload_bits(int(payload))
    raise TypeError(
        f"cannot size payload of type {type(payload).__name__}; "
        "use ints, strings, bytes, or containers of those"
    )


class Message:
    """A single point-to-point message in one communication phase.

    Attributes
    ----------
    sender, recipient:
        Process ids in ``range(n)``.
    payload:
        Arbitrary (sizeable) protocol data; treated as immutable.
    bits:
        Size charged to the communication-bit complexity, including
        :data:`MESSAGE_OVERHEAD_BITS`.  Pass a precomputed value when the
        same payload fans out to many recipients.
    """

    __slots__ = ("sender", "recipient", "payload", "bits")

    def __init__(
        self, sender: int, recipient: int, payload: Any, bits: int = 0
    ) -> None:
        self.sender = sender
        self.recipient = recipient
        self.payload = payload
        self.bits = (
            bits if bits else payload_bits(payload) + MESSAGE_OVERHEAD_BITS
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(sender={self.sender}, recipient={self.recipient}, "
            f"payload={self.payload!r}, bits={self.bits})"
        )


class Multicast:
    """One shared payload fanned out by one sender to many recipients.

    Queued by :meth:`ProcessEnv.send_many` / :meth:`ProcessEnv.broadcast` as
    a *single* outbox record: the payload is sized once (``bits`` is the
    per-copy charge, identical to what :meth:`ProcessEnv.send` would have
    computed for each copy) and the engine expands it into per-recipient
    :class:`Message` views only where a concrete copy is needed — inbox
    delivery, trace capture, adversary inspection.

    Attributes
    ----------
    sender:
        Sending process id.
    recipients:
        Tuple of recipient pids, in fan-out order; each contributes one
        flat index to the round's :class:`MessageBatch`.
    payload:
        The shared (treated-as-immutable) protocol data.
    bits:
        Per-copy size including :data:`MESSAGE_OVERHEAD_BITS`.
    """

    __slots__ = ("sender", "recipients", "payload", "bits")

    def __init__(
        self,
        sender: int,
        recipients: Iterable[int],
        payload: Any,
        bits: int = 0,
    ) -> None:
        self.sender = sender
        self.recipients = (
            recipients if type(recipients) is tuple else tuple(recipients)
        )
        self.payload = payload
        self.bits = (
            bits if bits else payload_bits(payload) + MESSAGE_OVERHEAD_BITS
        )

    def message(self, position: int) -> Message:
        """Materialize the per-recipient view at ``position``."""
        return Message(
            self.sender, self.recipients[position], self.payload, self.bits
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Multicast(sender={self.sender}, "
            f"recipients={self.recipients!r}, payload={self.payload!r}, "
            f"bits={self.bits})"
        )


#: An outbox entry: a point-to-point message or a multicast record.
MessageRecord = Message | Multicast


class MessageBatch(Sequence[Message]):
    """A round's outbound traffic as a flat, lazily-expanded message list.

    Wraps the ordered list of :class:`Message` / :class:`Multicast` records
    the processes queued this round and presents it as a
    ``Sequence[Message]``: ``batch[i]`` is the i-th *per-copy* message, with
    a multicast of k recipients occupying k consecutive flat indices in
    fan-out order.  Adversary omit indices, the :class:`NetworkView`
    helpers, and the :class:`Metrics` counters all use these flat
    positions, which makes them byte-identical to an execution that queued
    one :class:`Message` per copy.

    Per-copy :class:`Message` views are materialized on demand
    (``__getitem__`` / iteration); the aggregate queries (:meth:`total_bits`,
    ``len``, :meth:`endpoints_at`, the per-sender/per-recipient index
    builders) answer from the records without materializing anything.
    """

    __slots__ = ("records", "offsets", "_total", "_sender_sorted", "_columns")

    def __init__(self, records: Iterable[MessageRecord] = ()) -> None:
        records = records if type(records) is list else list(records)
        offsets: list[int] = []
        total = 0
        sender_sorted = True
        previous = -1
        for record in records:
            offsets.append(total)
            total += (
                len(record.recipients) if type(record) is Multicast else 1
            )
            sender = record.sender
            if sender < previous:
                sender_sorted = False
            previous = sender
        self.records = records
        #: Flat index of each record's first copy (parallel to ``records``).
        self.offsets = offsets
        self._total = total
        self._sender_sorted = sender_sorted
        self._columns: ColumnarBatch | None = None

    # ------------------------------------------------------------------
    @property
    def sender_sorted(self) -> bool:
        """True when records appear in non-decreasing sender order (always
        the case for engine-built batches, where processes advance in pid
        order) — lets delivery skip the per-round sender bucketing."""
        return self._sender_sorted

    def __len__(self) -> int:
        return self._total

    @overload
    def __getitem__(self, index: int) -> Message: ...

    @overload
    def __getitem__(self, index: slice) -> list[Message]: ...

    def __getitem__(self, index: int | slice) -> Message | list[Message]:
        if isinstance(index, slice):
            return [
                self._copy_at(position)
                for position in range(*index.indices(self._total))
            ]
        if index < 0:
            index += self._total
        if not 0 <= index < self._total:
            raise IndexError(
                f"message index {index} out of range ({self._total} copies)"
            )
        return self._copy_at(index)

    def _copy_at(self, index: int) -> Message:
        position = bisect_right(self.offsets, index) - 1
        record = self.records[position]
        if type(record) is Multicast:
            return record.message(index - self.offsets[position])
        return record

    def __iter__(self) -> Iterator[Message]:
        for record in self.records:
            if type(record) is Multicast:
                sender = record.sender
                payload = record.payload
                bits = record.bits
                for recipient in record.recipients:
                    yield Message(sender, recipient, payload, bits)
            else:
                yield record

    # ------------------------------------------------------------------
    def columns(
        self, fanout_cache: FanoutCache | None = None
    ) -> ColumnarBatch:
        """The batch as a :class:`~repro.runtime.columnar.ColumnarBatch`.

        Built on first call and cached for the batch's lifetime (a batch is
        immutable once constructed), so the adversary-validation and
        delivery passes of one round share a single vectorization.
        Requires numpy (:data:`repro.runtime.columnar.HAVE_NUMPY`).
        """
        cols = self._columns
        if cols is None:
            from .columnar import ColumnarBatch

            cols = ColumnarBatch.from_records(self.records, fanout_cache)
            self._columns = cols
        return cols

    def endpoints_at(self, index: int) -> tuple[int, int]:
        """``(sender, recipient)`` of flat copy ``index`` — no
        materialization, used by the engine's omission legality check."""
        position = bisect_right(self.offsets, index) - 1
        record = self.records[position]
        if type(record) is Multicast:
            return (
                record.sender,
                record.recipients[index - self.offsets[position]],
            )
        return record.sender, record.recipient

    def total_bits(self) -> int:
        """Sum of per-copy bits over the whole batch, from the records."""
        total = 0
        for record in self.records:
            if type(record) is Multicast:
                total += record.bits * len(record.recipients)
            else:
                total += record.bits
        return total

    def indices_by_sender(self) -> dict[int, list[int]]:
        """Flat copy indices grouped by sender, in index order."""
        by_sender: dict[int, list[int]] = {}
        for record, base in zip(self.records, self.offsets):
            if type(record) is Multicast:
                indices = range(base, base + len(record.recipients))
            else:
                indices = (base,)
            existing = by_sender.get(record.sender)
            if existing is None:
                by_sender[record.sender] = list(indices)
            else:
                existing.extend(indices)
        return by_sender

    def indices_by_recipient(self) -> dict[int, list[int]]:
        """Flat copy indices grouped by recipient, in index order."""
        by_recipient: dict[int, list[int]] = {}
        setdefault = by_recipient.setdefault
        for record, base in zip(self.records, self.offsets):
            if type(record) is Multicast:
                for position, recipient in enumerate(record.recipients):
                    setdefault(recipient, []).append(base + position)
            else:
                setdefault(record.recipient, []).append(base)
        return by_recipient

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MessageBatch({len(self.records)} records, "
            f"{self._total} copies)"
        )
