"""The first-class round-observer bus driven natively by the engine.

:class:`SyncNetwork` dispatches a fixed sequence of hooks every round:

``on_run_start`` → [``on_round_start`` → ``on_messages_sent`` →
``on_adversary_action`` → ``on_deliveries`` → [``on_transport``] →
``on_round_end``]* → ``on_run_end``

``on_transport`` fires only on rounds where the execution's transport
(:mod:`repro.transport`) measured real network links — never for the
default in-process transport — with the round's :class:`LinkSample`
measurements.

Observers are passive: they see the same objects the engine works with
(the network, the :class:`NetworkView` handed to the adversary, the
validated :class:`AdversaryAction`, the delivered/lost message lists) but
must not mutate them.  Attaching an observer never changes an execution —
decisions, rounds, and every :class:`Metrics` counter stay byte-identical
to an unobserved run (asserted by ``tests/test_observers.py``).

The engine's own accounting rides the same bus: a :class:`MetricsObserver`
is installed first on every network, so the per-round :class:`Metrics`
series is just another observer's output.  :class:`TraceRecorder`
(``repro.runtime.trace``) and :class:`RoundProfiler` are the other two
built-in observers.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from .messages import Message, MessageBatch
from .metrics import Metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from .network import AdversaryAction, ExecutionResult, NetworkView, SyncNetwork


@dataclass(frozen=True, slots=True)
class LinkSample:
    """One measured coordinator↔worker link exchange.

    Produced by transport-backed execution cores (:mod:`repro.transport`)
    and dispatched to observers through :meth:`RoundObserver.on_transport`.
    A sample with ``round == -1`` measures the connection handshake
    (``retries`` is then the worker's connect retry count); per-round
    samples measure one step round-trip.  ``ok=False`` marks the exchange
    that failed and crash-faulted the link's processes.
    """

    worker: int
    pids: tuple[int, ...]
    round: int
    latency_s: float
    bytes_sent: int
    bytes_received: int
    retries: int = 0
    ok: bool = True


class RoundObserver:
    """Base observer: every hook is a no-op; override what you need.

    Hook order within one round is fixed (see the module docstring).  The
    final local-computation phase in which the last processes return may
    end the run between ``on_round_start`` and ``on_messages_sent`` — an
    iteration that sent no messages is not a round, so observers must
    tolerate an unmatched ``on_round_start`` right before ``on_run_end``.
    """

    def on_run_start(self, network: SyncNetwork) -> None:
        """Called once, after the adversary's ``setup`` and before round 0."""

    def on_round_start(self, round_no: int, network: SyncNetwork) -> None:
        """Called before the round's local-computation phase."""

    def on_messages_sent(
        self, round_no: int, outbound: Sequence[Message], network: SyncNetwork
    ) -> None:
        """Called after local computation with the round's outbound traffic."""

    def on_adversary_action(
        self,
        round_no: int,
        view: NetworkView,
        action: AdversaryAction,
        network: SyncNetwork,
    ) -> None:
        """Called after the adversary acted and the engine validated the
        action (corruptions already applied to ``network.faulty``; the
        pre-action faulty set is ``view.faulty``)."""

    def on_deliveries(
        self,
        round_no: int,
        delivered: Sequence[Message],
        lost: Sequence[Message],
        network: SyncNetwork,
    ) -> None:
        """Called after surviving messages were placed in inboxes.

        ``delivered`` reached a live recipient; ``lost`` survived the
        adversary but its recipient had already terminated.
        """

    def on_transport(
        self,
        round_no: int,
        samples: Sequence[LinkSample],
        network: SyncNetwork,
    ) -> None:
        """Called before ``on_round_end`` on rounds where the transport
        measured real network links (:class:`LinkSample` round-trips);
        never fires for the default in-process transport."""

    def on_round_end(self, round_no: int, network: SyncNetwork) -> None:
        """Called at the very end of the round, before the counter advances."""

    def on_run_end(
        self, result: ExecutionResult, network: SyncNetwork
    ) -> None:
        """Called once with the finished :class:`ExecutionResult`."""


class MetricsObserver(RoundObserver):
    """The engine's own accounting, expressed as an observer.

    Installed first on every :class:`SyncNetwork`, so user observers may
    read up-to-date per-round series (e.g. ``metrics.messages_per_round``)
    from their ``on_round_end`` hooks.
    """

    def __init__(self, metrics: Metrics) -> None:
        self.metrics = metrics

    def on_messages_sent(
        self, round_no: int, outbound: Sequence[Message], network: SyncNetwork
    ) -> None:
        # A MessageBatch answers the bit total from its records (one term
        # per multicast) instead of materializing every per-copy view.
        if isinstance(outbound, MessageBatch):
            bits = outbound.total_bits()
        else:
            bits = sum(message.bits for message in outbound)
        self.metrics.record_round(len(outbound), bits)

    def on_adversary_action(
        self,
        round_no: int,
        view: NetworkView,
        action: AdversaryAction,
        network: SyncNetwork,
    ) -> None:
        self.metrics.record_omissions(len(action.omit))

    def on_deliveries(
        self,
        round_no: int,
        delivered: Sequence[Message],
        lost: Sequence[Message],
        network: SyncNetwork,
    ) -> None:
        # The engine accumulates delivery bit totals while it expands the
        # batch; fall back to summing for hand-driven dispatch.
        delivered_bits = getattr(network, "_delivered_bits", None)
        if delivered_bits is None:
            delivered_bits = sum(message.bits for message in delivered)
        self.metrics.record_delivery(len(delivered), delivered_bits)
        if lost:
            lost_bits = getattr(network, "_lost_bits", None)
            if lost_bits is None:
                lost_bits = sum(message.bits for message in lost)
            self.metrics.record_lost(len(lost), lost_bits)


class RoundProfiler(RoundObserver):
    """Wall-time profile of the engine's three per-round phases.

    Accumulates ``perf_counter`` seconds per *compute* (local-computation),
    *adversary* (view construction + strategy + validation) and *delivery*
    (inbox placement) phase, plus the observer/bookkeeping remainder of
    each round.  With ``per_round=True`` it also keeps one
    ``(compute, adversary, delivery)`` triple per round for hot-round
    hunting.

    Purely passive: attaching it never perturbs metrics, decisions, or
    randomness.
    """

    def __init__(self, per_round: bool = False) -> None:
        self.compute = 0.0
        self.adversary = 0.0
        self.delivery = 0.0
        self.overhead = 0.0
        self.rounds = 0
        self.wall_time = 0.0
        self.per_round = per_round
        self.round_times: list[tuple[float, float, float]] = []
        self._run_started = 0.0
        self._round_started = 0.0
        self._last_mark = 0.0
        self._compute_elapsed = 0.0
        self._adversary_elapsed = 0.0
        self._delivery_elapsed = 0.0

    # ------------------------------------------------------------------
    def on_run_start(self, network: SyncNetwork) -> None:
        self._run_started = time.perf_counter()

    def on_round_start(self, round_no: int, network: SyncNetwork) -> None:
        self._round_started = self._last_mark = time.perf_counter()

    def _phase(self) -> float:
        now = time.perf_counter()
        elapsed = now - self._last_mark
        self._last_mark = now
        return elapsed

    def on_messages_sent(
        self, round_no: int, outbound: Sequence[Message], network: SyncNetwork
    ) -> None:
        self._compute_elapsed = self._phase()
        self.compute += self._compute_elapsed

    def on_adversary_action(
        self,
        round_no: int,
        view: NetworkView,
        action: AdversaryAction,
        network: SyncNetwork,
    ) -> None:
        self._adversary_elapsed = self._phase()
        self.adversary += self._adversary_elapsed

    def on_deliveries(
        self,
        round_no: int,
        delivered: Sequence[Message],
        lost: Sequence[Message],
        network: SyncNetwork,
    ) -> None:
        self._delivery_elapsed = self._phase()
        self.delivery += self._delivery_elapsed

    def on_round_end(self, round_no: int, network: SyncNetwork) -> None:
        self.rounds += 1
        self.overhead += time.perf_counter() - self._last_mark
        if self.per_round:
            self.round_times.append(
                (
                    self._compute_elapsed,
                    self._adversary_elapsed,
                    self._delivery_elapsed,
                )
            )

    def on_run_end(
        self, result: ExecutionResult, network: SyncNetwork
    ) -> None:
        self.wall_time = time.perf_counter() - self._run_started

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """JSON-friendly totals (seconds), e.g. for campaign records."""
        return {
            "rounds": self.rounds,
            "wall_time": self.wall_time,
            "compute": self.compute,
            "adversary": self.adversary,
            "delivery": self.delivery,
            "overhead": self.overhead,
        }

    def hottest_rounds(self, count: int = 5) -> list[tuple[int, float]]:
        """The ``count`` slowest rounds as (round, seconds) pairs
        (requires ``per_round=True``)."""
        totals = [
            (index, sum(triple))
            for index, triple in enumerate(self.round_times)
        ]
        totals.sort(key=lambda pair: pair[1], reverse=True)
        return totals[:count]
