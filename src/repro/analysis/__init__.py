"""Analysis helpers: theory curves, scaling fits, experiment drivers,
and the Table-1 renderer."""

from . import theory
from .experiments import (
    ScalingPoint,
    balancing_adversary,
    measure_ben_or,
    measure_consensus_scaling,
    measure_dolev_strong,
    measure_phase_king,
    measure_tradeoff_scaling,
    mixed_inputs,
    no_adversary,
    silence_adversary,
)
from ..fabric import CampaignCache, CellId
from .campaign import (
    CampaignSpec,
    append_journal_record,
    load_campaign,
    load_journal,
    record_cell_key,
    repair_journal,
    run_campaign,
    save_campaign,
    summarize_campaign,
)
from .conformance import (
    ConformanceReport,
    ScenarioResult,
    check_consensus_protocol,
)
from .fits import RatioSummary, least_squares_slope, loglog_slope, ratio_summary
from .sparkline import hbar, render_series, sparkline
from .montecarlo import (
    RateEstimate,
    agreement_failure_rate,
    decision_bias,
    estimate_rate,
    fallback_rate_vs_epochs,
    wilson_interval,
)
from .tables import Table1Row, render_table, table1

__all__ = [
    "theory",
    "ScalingPoint",
    "balancing_adversary",
    "measure_ben_or",
    "measure_consensus_scaling",
    "measure_dolev_strong",
    "measure_phase_king",
    "measure_tradeoff_scaling",
    "mixed_inputs",
    "no_adversary",
    "silence_adversary",
    "RatioSummary",
    "least_squares_slope",
    "loglog_slope",
    "ratio_summary",
    "Table1Row",
    "render_table",
    "table1",
    "CampaignCache",
    "CampaignSpec",
    "CellId",
    "append_journal_record",
    "load_campaign",
    "load_journal",
    "record_cell_key",
    "repair_journal",
    "run_campaign",
    "save_campaign",
    "summarize_campaign",
    "ConformanceReport",
    "ScenarioResult",
    "check_consensus_protocol",
    "hbar",
    "render_series",
    "sparkline",
    "RateEstimate",
    "agreement_failure_rate",
    "decision_bias",
    "estimate_rate",
    "fallback_rate_vs_epochs",
    "wilson_interval",
]
