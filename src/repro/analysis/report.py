"""Programmatic regeneration of EXPERIMENTS.md.

Runs the full experiment battery (one entry per paper artifact, mirroring
the per-experiment index in DESIGN.md) and renders a markdown report with
paper-claim vs measured-result rows.  The repository's checked-in
EXPERIMENTS.md is produced by::

    python -m repro.analysis.report [output-path]

Each experiment returns an :class:`ExperimentRecord`; `verdict` states
whether the measured *shape* matches the paper's claim (constants are not
expected to match — the substrate is a simulator, not the authors' model
constants; see DESIGN.md).
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass

from ..core import (
    run_consensus,
    run_early_stopping_consensus,
    sweep_tradeoff,
)
from ..adversary import SilenceAdversary
from ..baselines import measure_amortization, run_trb
from ..graphs import robust_core, spreading_graph, subgraph_diameter
from ..lowerbound import (
    classify_all_inputs,
    FloodMinProtocol,
    measure_tradeoff_product,
    sweep_lemma12,
    verify_lemma9,
    verify_threshold_inequality,
)
from ..params import ProtocolParams
from .experiments import (
    balancing_adversary,
    measure_consensus_scaling,
    measure_dolev_strong,
    mixed_inputs,
)
from .fits import loglog_slope
from .tables import render_table, table1


@dataclass(frozen=True)
class ExperimentRecord:
    """One paper-artifact reproduction result."""

    experiment_id: str
    artifact: str
    paper_claim: str
    measured: str
    verdict: str
    details: str = ""


def experiment_table1(params: ProtocolParams) -> ExperimentRecord:
    n = 144
    rows = table1(n=n, params=params, seed=7)
    details = "```\n" + render_table(rows) + "\n```"
    measured_row = rows[0]
    return ExperimentRecord(
        experiment_id="E-T1",
        artifact="Table 1 (all rows)",
        paper_claim=(
            "Thm 1: O(sqrt(n) log^2 n) rounds, O(n^2 log^3 n) bits, "
            "O(n^1.5 log^2 n) random bits; Thm 3 trade-off row; three "
            "lower-bound rows"
        ),
        measured=(
            f"at n={n}: {measured_row.time}, {measured_row.comm_bits} bits, "
            f"{measured_row.random_bits} random bits; all lower-bound rows "
            "numerically dominated by the measured run"
        ),
        verdict="shape holds",
        details=details,
    )


def experiment_figure1(params: ProtocolParams) -> ExperimentRecord:
    lines = []
    ok = True
    for n in (512, 1024, 2048):
        delta = params.delta(n)
        graph = spreading_graph(n, delta, seed=3)
        removed = sorted(range(n), key=graph.degree, reverse=True)[: n // 15]
        core = robust_core(graph, removed, delta // 3)
        diameter = subgraph_diameter(graph, core) if n <= 1024 else None
        bound = n - 4 * len(removed) // 3
        ok &= len(core) >= bound
        if diameter is not None:
            ok &= diameter <= 2 * math.ceil(math.log2(n))
        lines.append(
            f"n={n}: Delta={delta}, removed {len(removed)} hubs, core "
            f"{len(core)} (bound {bound})"
            + (f", diameter {diameter} <= 2 lg n" if diameter else "")
        )
    return ExperimentRecord(
        experiment_id="E-F1 / E-TH4",
        artifact="Figure 1 overlay + Theorem 4 + Lemma 4",
        paper_claim=(
            "R(n, Delta/(n-1)) is expanding and edge-sparse whp; removing "
            "|T| <= n/15 vertices leaves a >= n - 4|T|/3 core of degree "
            ">= Delta/3 with O(log n) diameter"
        ),
        measured="; ".join(lines),
        verdict="holds" if ok else "VIOLATED",
    )


def experiment_figure2(params: ProtocolParams) -> ExperimentRecord:
    from ..core import cached_bag_tree
    from ..core.aggregation import group_bits_aggregation
    from ..runtime import SyncNetwork, SyncProcess

    class Harness(SyncProcess):
        def __init__(self, pid, n, bit):
            super().__init__(pid, n)
            self.bit = bit

        def program(self, env):
            group = tuple(range(self.n))
            tree = cached_bag_tree(group)
            result = yield from group_bits_aggregation(
                env, group, tree, True, self.bit, params, tree.num_stages
            )
            env.decide((result.ones, result.zeros))
            return None

    lines = []
    ok = True
    for m in (16, 64):
        # Report harness processes are ad hoc, not registered specs:
        # a designated engine fixture.
        network = SyncNetwork(  # repro-lint: disable=REP008
            [Harness(pid, m, pid % 2) for pid in range(m)], seed=m
        )
        result = network.run()
        tree_stages = cached_bag_tree(tuple(range(m))).num_stages
        exact = all(
            value == (m // 2, (m + 1) // 2)
            for value in result.decisions.values()
        )
        ok &= exact and result.rounds == 3 * tree_stages
        lines.append(
            f"m={m}: {result.rounds} rounds (= 3 ceil(lg m)), counts exact, "
            f"{result.metrics.bits_sent} bits"
        )
    return ExperimentRecord(
        experiment_id="E-F2",
        artifact="Figure 2 / Algorithm 2 (tree aggregation)",
        paper_claim=(
            "O(log n) rounds; O(n log^2 n) bits per group; operative counts "
            "differ only by in-epoch knockouts (Lemmas 1-2)"
        ),
        measured="; ".join(lines),
        verdict="holds" if ok else "VIOLATED",
    )


def experiment_figure3(params: ProtocolParams) -> ExperimentRecord:
    lines = []
    ok = True
    for ones in (0, 30, 70, 100):
        n = 100
        inputs = [1] * ones + [0] * (n - ones)
        run = run_consensus(inputs, t=3, params=params, seed=ones + 1)
        expected = 1 if ones > 50 else 0
        ok &= run.decision == expected
        if ones in (0, 100):
            ok &= run.metrics.random_bits == 0
        lines.append(
            f"{ones}% ones -> decision {run.decision}, "
            f"{run.metrics.random_bits} random bits"
        )
    return ExperimentRecord(
        experiment_id="E-F3",
        artifact="Figure 3 (biased-majority thresholds)",
        paper_claim=(
            "clear majorities adopt deterministically, unanimity spends "
            "zero randomness, and the 18/30-15/30 gap forbids deterministic "
            "splits under the inoperative perturbation"
        ),
        measured="; ".join(lines),
        verdict="holds" if ok else "VIOLATED",
    )


def experiment_theorem1(params: ProtocolParams) -> ExperimentRecord:
    points = measure_consensus_scaling(
        [64, 100, 144, 196, 256],
        adversary_factory=balancing_adversary,
        params=params,
        seed=1,
    )
    ns = [p.n for p in points]
    round_slope = loglog_slope(ns, [p.rounds for p in points])
    bits_slope = loglog_slope(ns, [p.bits_sent for p in points])
    rbits_slope = loglog_slope(ns, [max(1, p.random_bits) for p in points])
    ok = round_slope < 1.3 and 1.4 < bits_slope < 2.8
    return ExperimentRecord(
        experiment_id="E-TH1",
        artifact="Theorem 1/5 scaling",
        paper_claim=(
            "rounds ~ n^0.5 polylog, bits ~ n^2 polylog, random bits ~ "
            "n^1.5 polylog at t = Theta(n)"
        ),
        measured=(
            f"log-log slopes under the vote-balancing adversary: rounds "
            f"{round_slope:.2f}, bits {bits_slope:.2f}, random "
            f"{rbits_slope:.2f} over n in 64..256"
        ),
        verdict="shape holds" if ok else "VIOLATED",
    )


def experiment_theorem2(params: ProtocolParams) -> ExperimentRecord:
    lemma12 = sweep_lemma12([64, 1024], [0.25], trials=800)
    budgets = [p.measured_budget for p in lemma12]
    lemma12_ok = all(p.measured_budget <= p.lemma12_bound for p in lemma12)

    talagrand = verify_threshold_inequality([16, 256], [0.5, 1.0, 2.0])
    talagrand_ok = all(check.holds for check in talagrand)

    report = classify_all_inputs(FloodMinProtocol(3, 2), t=1)
    lemma13_ok = report.lemma13_witness() is not None and not report.broken()

    points = measure_tradeoff_product(48, 12, [0, 12, 48], seed=9,
                                      max_phases=250)
    product_ok = all(p.normalized >= 1.0 for p in points)
    ok = lemma12_ok and talagrand_ok and lemma13_ok and product_ok
    return ExperimentRecord(
        experiment_id="E-TH2",
        artifact="Theorem 2/7 lower bound",
        paper_claim=(
            "Lemma 12: 8 sqrt(k log 1/a) hides bias the coin game; "
            "Theorem 6 (Talagrand) holds; Lemma 13: non-univalent initial "
            "states exist; T x (R+T) >= t^2/log n under attack"
        ),
        measured=(
            f"hide budgets {budgets} (bounds "
            f"{[f'{p.lemma12_bound:.0f}' for p in lemma12]}); Talagrand "
            f"{len(talagrand)} grid points, 0 violations; Lemma-13 witness "
            f"{report.lemma13_witness()}; products/bound = "
            f"{[f'{p.normalized:.0f}' for p in points]}"
        ),
        verdict="holds" if ok else "VIOLATED",
    )


def experiment_theorem3(params: ProtocolParams) -> ExperimentRecord:
    points = sweep_tradeoff(mixed_inputs(64), [1, 4, 16, 64], params=params,
                            seed=21)
    rounds = [p.rounds for p in points]
    randomness = [p.random_bits for p in points]
    ok = (
        rounds[0] == min(rounds)
        and max(rounds) > 4 * rounds[0]
        and randomness[0] == max(randomness)
        and randomness[-1] == 0
    )
    return ExperimentRecord(
        experiment_id="E-TH3",
        artifact="Theorem 3/8 trade-off",
        paper_claim=(
            "for any R in O(n^1.5): ~n^2/R rounds, ~n^2 bits; interpolates "
            "from the randomized (x=1) to the deterministic (x=n) regime"
        ),
        measured=(
            f"x=[1,4,16,64] at n=64: rounds {rounds}, random bits "
            f"{randomness}, comm bits spread x"
            f"{max(p.bits_sent for p in points) / min(p.bits_sent for p in points):.1f}"
        ),
        verdict="shape holds" if ok else "VIOLATED",
    )


def experiment_baselines(params: ProtocolParams) -> ExperimentRecord:
    ns = [36, 64, 100, 144]
    algorithm1 = measure_consensus_scaling(ns, params=params, seed=31)
    dolev_strong = measure_dolev_strong(ns, fault_fraction=8, seed=31)
    a_growth = algorithm1[-1].rounds / algorithm1[0].rounds
    d_growth = dolev_strong[-1].rounds / dolev_strong[0].rounds
    ratio_first = dolev_strong[0].bits_sent / algorithm1[0].bits_sent
    ratio_last = dolev_strong[-1].bits_sent / algorithm1[-1].bits_sent
    ok = a_growth < d_growth and ratio_last > ratio_first
    return ExperimentRecord(
        experiment_id="E-BASE",
        artifact="Section 1 / B.3 baseline comparison",
        paper_claim=(
            "the 40-year-old O(t)-round Dolev-Strong baseline loses on "
            "round growth and on bit growth (n^2 t vs n^2 polylog)"
        ),
        measured=(
            f"over n x4: Alg1 rounds x{a_growth:.2f} vs DS x{d_growth:.2f}; "
            f"DS/Alg1 bit ratio widens {ratio_first:.2f} -> {ratio_last:.2f}"
        ),
        verdict="who-wins shape holds" if ok else "VIOLATED",
    )


def experiment_lemma9(params: ProtocolParams) -> ExperimentRecord:
    checks = verify_lemma9([64, 256, 1024, 4096])
    violations = [check for check in checks if not check.holds]
    return ExperimentRecord(
        experiment_id="E-L9",
        artifact="Lemma 9 (anti-concentration of the coin sum)",
        paper_claim=(
            "Pr[X - E[X] >= t sqrt(n)] >= exp(-4(t+1)^2)/sqrt(2 pi) for "
            "t <= sqrt(n)/8 — the per-epoch progress engine of Lemma 10"
        ),
        measured=(
            f"{len(checks)} exact binomial grid points, "
            f"{len(violations)} violations"
        ),
        verdict="holds" if not violations else "VIOLATED",
    )


def experiment_b3(params: ProtocolParams) -> ExperimentRecord:
    points = measure_amortization(128, 4, seed=4)
    crash = points["crash"]
    omission = points["omission"]
    ok = (
        crash.responses_to_victims == 0
        and omission.responses_to_victims == 4 * (128 - 4)
        and omission.victim_requests == 127
    )
    return ExperimentRecord(
        experiment_id="E-B3",
        artifact="Appendix B.3 amortization argument",
        paper_claim=(
            "doubling strategies amortize against crashes but a single "
            "omission-faulty process forces Theta(n) inquiries and charges "
            "every healthy process"
        ),
        measured=(
            f"n=128, t=4: forced healthy responses crash={crash.responses_to_victims} "
            f"vs omission={omission.responses_to_victims} (= t(n-t)); "
            f"victim escalation to {omission.victim_requests} = n-1 requests"
        ),
        verdict="holds" if ok else "VIOLATED",
    )


def experiment_early_stopping(params: ProtocolParams) -> ExperimentRecord:
    n = 96
    fixed = run_consensus([1] * n, params=params, seed=17)
    adaptive = run_early_stopping_consensus([1] * n, params=params, seed=17)
    balanced = run_early_stopping_consensus(
        mixed_inputs(n), params=params, seed=17
    )
    ok = (
        adaptive.decision == fixed.decision == 1
        and adaptive.result.time_to_agreement()
        < fixed.result.time_to_agreement() / 3
        and balanced.decision in (0, 1)
    )
    return ExperimentRecord(
        experiment_id="E-ES",
        artifact="Section-6 extension: early stopping",
        paper_claim=(
            "(future work / [33, 34]) adapt the running time to instance "
            "hardness while preserving correctness"
        ),
        measured=(
            f"n={n} unanimous: {fixed.result.time_to_agreement()} -> "
            f"{adaptive.result.time_to_agreement()} rounds; balanced inputs "
            f"exit at epoch {max(p.exited_epoch for p in balanced.processes)}"
            f" of {balanced.processes[0].num_epochs}"
        ),
        verdict="holds" if ok else "VIOLATED",
    )


def experiment_trb(params: ProtocolParams) -> ExperimentRecord:
    fault_free_rounds = {
        run_trb(32, 0, 9, t, seed=11).result.time_to_agreement()
        for t in (1, 4, 8)
    }
    silenced = run_trb(
        32, sender=0, value=9, t=4, adversary=SilenceAdversary([0]), seed=12
    ).result
    deliveries = set(silenced.non_faulty_decisions().values())
    ok = len(fault_free_rounds) == 1 and len(deliveries) == 1
    return ExperimentRecord(
        experiment_id="E-TRB",
        artifact="Related work [34]: early-stopping TRB",
        paper_claim=(
            "terminating reliable broadcast under general omissions can "
            "stop early — rounds track actual failures, not the budget"
        ),
        measured=(
            f"fault-free rounds identical across budgets t=1,4,8 "
            f"({fault_free_rounds.pop()} rounds); silenced sender -> "
            f"consistent delivery {deliveries}"
        ),
        verdict="holds" if ok else "VIOLATED",
    )


ALL_EXPERIMENTS = (
    experiment_table1,
    experiment_figure1,
    experiment_figure2,
    experiment_figure3,
    experiment_theorem1,
    experiment_theorem2,
    experiment_theorem3,
    experiment_baselines,
    experiment_lemma9,
    experiment_b3,
    experiment_early_stopping,
    experiment_trb,
)


def run_full_report(params: ProtocolParams | None = None) -> list[ExperimentRecord]:
    """Execute every experiment; returns the records in index order."""
    params = params if params is not None else ProtocolParams.practical()
    return [experiment(params) for experiment in ALL_EXPERIMENTS]


def render_markdown(records: list[ExperimentRecord]) -> str:
    """Render the EXPERIMENTS.md body from experiment records."""
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `python -m repro.analysis.report` "
        "(ProtocolParams.practical(); see DESIGN.md for the constants "
        "substitution and why shapes, not absolute constants, are the "
        "comparison target).",
        "",
        "Any VIOLATED verdict must be reported with a shrunk "
        "`ExecutionRecipe` counterexample attached (see `repro.replay`; "
        "replay it with `python -m repro.cli replay <recipe.json>`).",
        "",
    ]
    for record in records:
        lines += [
            f"## {record.experiment_id} — {record.artifact}",
            "",
            f"**Paper claim.** {record.paper_claim}",
            "",
            f"**Measured.** {record.measured}",
            "",
            f"**Verdict.** {record.verdict}",
            "",
        ]
        if record.details:
            lines += [record.details, ""]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    output = argv[0] if argv else "EXPERIMENTS.md"
    records = run_full_report()
    text = render_markdown(records)
    with open(output, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"wrote {output} ({len(records)} experiments)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
