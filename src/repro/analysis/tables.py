"""Rendering of Table 1 — the paper's single results table — with measured
columns next to the theory shapes.

Table 1 lists, per result, the time / communication-bit / random-bit
complexities.  :func:`table1` runs the two algorithms (Theorems 1 and 3) at
one system size and evaluates the three lower-bound rows ([10], [1],
Theorem 2) numerically at the same (n, t), producing the same rows the paper
reports — with measured values where the paper has asymptotics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import run_consensus, run_tradeoff_consensus
from ..params import ProtocolParams
from . import theory
from .experiments import mixed_inputs


@dataclass(frozen=True)
class Table1Row:
    """One row of the reproduced Table 1."""

    result: str
    time: str
    comm_bits: str
    random_bits: str
    comments: str


def _fmt(value: float) -> str:
    if value >= 1_000_000:
        return f"{value / 1_000_000:.2f}M"
    if value >= 1_000:
        return f"{value / 1_000:.1f}k"
    return f"{value:.0f}" if value == int(value) else f"{value:.2f}"


def table1(
    n: int = 128,
    params: ProtocolParams | None = None,
    seed: int = 0,
    x: int | None = None,
) -> list[Table1Row]:
    """Reproduce Table 1 at a concrete (n, t): measured + theory rows."""
    params = params if params is not None else ProtocolParams.practical()
    t = params.max_faults(n)
    inputs = mixed_inputs(n)

    main = run_consensus(inputs, t=t, params=params, seed=seed)
    main_metrics = main.metrics
    main_time = main.result.time_to_agreement()

    if x is None:
        x = max(2, n // 16)
    tradeoff = run_tradeoff_consensus(inputs, x, params=params, seed=seed)
    tradeoff_metrics = tradeoff.metrics
    tradeoff_time = tradeoff.result.time_to_agreement()

    rows = [
        Table1Row(
            result="Thm 1 (measured)",
            time=f"{main_time} rounds",
            comm_bits=_fmt(main_metrics.bits_sent),
            random_bits=_fmt(main_metrics.random_bits),
            comments=f"n={n}, t={t}, decision={main.decision}",
        ),
        Table1Row(
            result="Thm 1 (theory)",
            time=_fmt(theory.theorem1_rounds(n, t)),
            comm_bits=_fmt(theory.theorem1_bits(n, t)),
            random_bits=_fmt(theory.theorem1_random_bits(n, t)),
            comments="O(sqrt(n)log^2 n), O(n^2 log^3 n), O(n^1.5 log^2 n)",
        ),
        Table1Row(
            result="Thm 3 (measured)",
            time=f"{tradeoff_time} rounds",
            comm_bits=_fmt(tradeoff_metrics.bits_sent),
            random_bits=_fmt(tradeoff_metrics.random_bits),
            comments=f"x={x} super-processes, decision={tradeoff.decision}",
        ),
        Table1Row(
            result="Thm 3 (theory)",
            time=_fmt(theory.theorem3_rounds(n, x)),
            comm_bits=_fmt(theory.theorem1_bits(n, t)),
            random_bits=_fmt(theory.theorem3_random_bits(n, x)),
            comments="O(n^2/R log^2 n) rounds for R random bits",
        ),
        Table1Row(
            result="[10] lower bound",
            time=_fmt(theory.bar_joseph_ben_or_rounds(n, t)),
            comm_bits="-",
            random_bits="-",
            comments="Omega(t/sqrt(n log n)) rounds, correct prob. = 1",
        ),
        Table1Row(
            result="[1] lower bound",
            time="-",
            comm_bits=_fmt(theory.abraham_messages(t)),
            random_bits="-",
            comments="Omega(eps t^2) messages, correct prob. >= 3/4 + eps",
        ),
        Table1Row(
            result="Thm 2 lower bound",
            time="T",
            comm_bits="-",
            random_bits="R",
            comments=(
                "T(R+T) >= t^2/log n = " + _fmt(theory.theorem2_product(n, t))
            ),
        ),
    ]
    return rows


def render_table(rows: list[Table1Row]) -> str:
    """ASCII-render Table 1 rows."""
    headers = ("result", "time", "comm. bits", "random bits", "comments")
    cells = [headers] + [
        (row.result, row.time, row.comm_bits, row.random_bits, row.comments)
        for row in rows
    ]
    widths = [
        max(len(line[column]) for line in cells)
        for column in range(len(headers))
    ]
    border = "+".join("-" * (width + 2) for width in widths)
    border = f"+{border}+"
    lines = [border]
    for index, line in enumerate(cells):
        rendered = " | ".join(
            cell.ljust(width) for cell, width in zip(line, widths)
        )
        lines.append(f"| {rendered} |")
        if index == 0:
            lines.append(border)
    lines.append(border)
    return "\n".join(lines)
