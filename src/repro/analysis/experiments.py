"""Experiment drivers shared by benchmarks, examples and the CLI.

Each driver runs a protocol sweep on the synchronous substrate and returns
plain dataclasses with the paper's three complexity measures, so the
benchmark modules stay thin.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ..adversary import SilenceAdversary, VoteBalancingAdversary
from ..baselines import run_ben_or, run_dolev_strong, run_phase_king
from ..core import run_consensus, run_tradeoff_consensus
from ..params import ProtocolParams
from ..runtime import Adversary

AdversaryFactory = Callable[[int, int], Adversary | None]


@dataclass(frozen=True)
class ScalingPoint:
    """One (n, adversary) measurement of a consensus protocol."""

    n: int
    t: int
    rounds: int
    bits_sent: int
    messages_sent: int
    random_bits: int
    random_calls: int
    decision: int
    used_fallback: bool


def no_adversary(n: int, t: int) -> Adversary | None:
    return None


def silence_adversary(n: int, t: int) -> Adversary:
    """Silence the full fault budget from round 0 (crash-like worst case)."""
    return SilenceAdversary(range(t))


def balancing_adversary(n: int, t: int) -> Adversary:
    """The adaptive vote-balancing strategy (strongest implemented)."""
    return VoteBalancingAdversary(seed=n)


def mixed_inputs(n: int) -> list[int]:
    """The hardest input assignment: a perfectly balanced split."""
    return [pid % 2 for pid in range(n)]


def measure_consensus_scaling(
    ns: Sequence[int],
    adversary_factory: AdversaryFactory = no_adversary,
    params: ProtocolParams | None = None,
    seed: int = 0,
    whp_retries: int = 3,
) -> list[ScalingPoint]:
    """Run Algorithm 1 across system sizes; collect Table-1 measurables.

    ``whp_retries``: the paper's complexity bounds describe the
    whp fast path; at simulable n the truncated epoch budget drops to the
    Dolev-Strong fallback with a few percent probability, whose O(n^2 t)
    bits would dominate a scaling plot.  To measure the whp path, a run
    that hit the deterministic fallback is retried (fresh seed) up to
    ``whp_retries`` times; the last attempt is reported either way, and
    ``used_fallback`` records what happened.
    """
    params = params if params is not None else ProtocolParams.practical()
    points = []
    for n in ns:
        t = params.max_faults(n)
        run = None
        for attempt in range(max(1, whp_retries)):
            run = run_consensus(
                mixed_inputs(n),
                t=t,
                adversary=adversary_factory(n, t),
                params=params,
                seed=seed + n + 7919 * attempt,
            )
            if not run.ran_deterministic_fallback:
                break
        metrics = run.metrics
        points.append(
            ScalingPoint(
                n=n,
                t=t,
                rounds=run.result.time_to_agreement(),
                bits_sent=metrics.bits_sent,
                messages_sent=metrics.messages_sent,
                random_bits=metrics.random_bits,
                random_calls=metrics.random_calls,
                decision=run.decision,
                used_fallback=run.ran_deterministic_fallback,
            )
        )
    return points


def measure_tradeoff_scaling(
    n: int,
    xs: Sequence[int],
    adversary_factory: AdversaryFactory = no_adversary,
    params: ProtocolParams | None = None,
    seed: int = 0,
) -> list[ScalingPoint]:
    """Run Algorithm 4 across super-process counts at fixed n."""
    params = params if params is not None else ProtocolParams.practical()
    points = []
    for x in xs:
        run = run_tradeoff_consensus(
            mixed_inputs(n),
            x,
            adversary=adversary_factory(n, 0),
            params=params,
            seed=seed + x,
        )
        metrics = run.metrics
        points.append(
            ScalingPoint(
                n=n,
                t=run.processes[0].t,
                rounds=run.result.time_to_agreement(),
                bits_sent=metrics.bits_sent,
                messages_sent=metrics.messages_sent,
                random_bits=metrics.random_bits,
                random_calls=metrics.random_calls,
                decision=run.decision,
                used_fallback=run.used_fallback,
            )
        )
    return points


def measure_dolev_strong(
    ns: Sequence[int],
    fault_fraction: int = 8,
    adversary_factory: AdversaryFactory = silence_adversary,
    seed: int = 0,
) -> list[ScalingPoint]:
    """Run the deterministic baseline across system sizes.

    ``fault_fraction`` keeps t = n / fault_fraction small enough that the
    chain protocol stays tractable (its bits grow like n^2 t).
    """
    points = []
    for n in ns:
        t = max(1, n // fault_fraction)
        result = run_dolev_strong(
            mixed_inputs(n),
            t,
            adversary=adversary_factory(n, t),
            seed=seed + n,
        ).result
        decision = result.agreement_value()
        metrics = result.metrics
        points.append(
            ScalingPoint(
                n=n,
                t=t,
                rounds=result.time_to_agreement(),
                bits_sent=metrics.bits_sent,
                messages_sent=metrics.messages_sent,
                random_bits=metrics.random_bits,
                random_calls=metrics.random_calls,
                decision=decision,
                used_fallback=False,
            )
        )
    return points


def measure_phase_king(
    ns: Sequence[int],
    fault_fraction: int = 8,
    adversary_factory: AdversaryFactory = silence_adversary,
    seed: int = 0,
) -> list[ScalingPoint]:
    """Run the phase-king baseline across system sizes."""
    points = []
    for n in ns:
        t = max(1, min(n // fault_fraction, (n - 1) // 4))
        result = run_phase_king(
            mixed_inputs(n),
            t,
            adversary=adversary_factory(n, t),
            seed=seed + n,
        ).result
        decision = result.agreement_value()
        metrics = result.metrics
        points.append(
            ScalingPoint(
                n=n,
                t=t,
                rounds=result.time_to_agreement(),
                bits_sent=metrics.bits_sent,
                messages_sent=metrics.messages_sent,
                random_bits=metrics.random_bits,
                random_calls=metrics.random_calls,
                decision=decision,
                used_fallback=False,
            )
        )
    return points


def measure_ben_or(
    ns: Sequence[int],
    fault_fraction: int = 8,
    seed: int = 0,
) -> list[ScalingPoint]:
    """Run the broadcast-voting baseline (crash model) across sizes."""
    points = []
    for n in ns:
        t = max(1, n // fault_fraction)
        result = run_ben_or(
            mixed_inputs(n),
            t=t,
            adversary=SilenceAdversary(range(t)),
            seed=seed + n,
        ).result
        decision = result.agreement_value()
        metrics = result.metrics
        points.append(
            ScalingPoint(
                n=n,
                t=t,
                rounds=result.time_to_agreement(),
                bits_sent=metrics.bits_sent,
                messages_sent=metrics.messages_sent,
                random_bits=metrics.random_bits,
                random_calls=metrics.random_calls,
                decision=decision,
                used_fallback=False,
            )
        )
    return points
