"""Theoretical complexity curves from the paper (Table 1).

These are the *shapes* the measurements are compared against — asymptotic
expressions with all constants set to 1, evaluated at concrete (n, t).  The
benchmarks report measured/theory ratios across n; a shape match means the
ratio stays roughly constant (equivalently, matching log-log slopes).
"""

from __future__ import annotations

import math


def log2n(n: int) -> float:
    """``log2 n`` floored at 1, the polylog unit used throughout."""
    return max(1.0, math.log2(n))


# ---------------------------------------------------------------------------
# Theorem 1 / Theorem 5: the main algorithm.
# ---------------------------------------------------------------------------

def theorem1_rounds(n: int, t: int) -> float:
    """``O(t / sqrt(n) * log^2 n)`` rounds (Theorem 5)."""
    return (t / math.sqrt(n)) * log2n(n) ** 2


def theorem1_bits(n: int, t: int) -> float:
    """``O(n (t log^3 n + n))`` communication bits (Theorem 5)."""
    return n * (t * log2n(n) ** 3 + n)


def theorem1_random_bits(n: int, t: int) -> float:
    """``O(t sqrt(n) log^2 n)`` random bits (Theorem 5)."""
    return t * math.sqrt(n) * log2n(n) ** 2


# ---------------------------------------------------------------------------
# Theorem 2 / Theorem 7: the lower bound.
# ---------------------------------------------------------------------------

def theorem2_product(n: int, t: int) -> float:
    """``T x (R + T) = Omega(t^2 / log n)``."""
    return t * t / log2n(n)


def bar_joseph_ben_or_rounds(n: int, t: int) -> float:
    """The [10] lower bound ``Omega(t / sqrt(n log n))``."""
    return t / math.sqrt(n * log2n(n))


def abraham_messages(t: int, epsilon: float = 0.25) -> float:
    """The [1] lower bound ``Omega(epsilon t^2)`` messages."""
    return epsilon * t * t


# ---------------------------------------------------------------------------
# Theorem 3 / Theorem 8: the trade-off algorithm.
# ---------------------------------------------------------------------------

def theorem3_rounds(n: int, x: int) -> float:
    """``~ sqrt(n x)`` rounds for x super-processes (Theorem 8)."""
    return math.sqrt(n * x) * log2n(n) ** 2


def theorem3_random_bits(n: int, x: int) -> float:
    """``~ n sqrt(n/x)`` random bits for x super-processes (Theorem 8)."""
    return n * math.sqrt(n / x)


def theorem3_invariant(rounds: float, random_bits: float) -> float:
    """Theorem 8's invariant: ``ROUNDS x RANDOMNESS ~ n^2`` (polylog-free)."""
    return rounds * random_bits


# ---------------------------------------------------------------------------
# Baselines.
# ---------------------------------------------------------------------------

def dolev_strong_rounds(t: int) -> float:
    """t + 1 rounds, the deterministic optimum [15, 17]."""
    return t + 1


def dolev_strong_bits(n: int, t: int) -> float:
    """``O(n^2 t log n)``-scale bits for the chain-relay implementation."""
    return n * n * (t + 1) * log2n(n)


def phase_king_rounds(t: int) -> float:
    """3 (t + 1) rounds."""
    return 3 * (t + 1)


def phase_king_bits(n: int, t: int) -> float:
    """``O(n^2 t)`` bits."""
    return n * n * (t + 1)
