"""Batch experiment campaigns: cached, sharded grid sweeps with resume.

For parameter studies at any scale: declare a grid over (protocol, n,
adversary, seeds) as a :class:`CampaignSpec`, run it across a
work-stealing worker fabric, and serve every previously computed cell
from a content-addressed cache, so re-runs — across campaigns, CLI
invocations, or hosts — recompute only misses.

A campaign *spec* is data, not code, and it is the single public entry
point::

    spec = CampaignSpec(
        name="scaling-study",
        protocol="algorithm1",            # any sweepable registry protocol
        ns=[64, 144, 256],
        adversaries=["none", "silence", "balance"],
        seeds=[0, 1, 2],
        options={"x": 4},                 # protocol-specific extras
    )
    records = run_campaign(
        spec, jobs=4, cache="~/.cache/repro-cells",
        journal="scaling-study.jsonl",
    )
    save_campaign(records, "scaling-study.json")

Every cell is identified by a :class:`repro.fabric.CellId` — the canonical
digest of ``(protocol, n, t, adversary, seed, options, model,
model_options, engine capability, transport, transport_options)`` — which
is the journal resume identity, the cache key, and the report grouping
handle all at once.

Three persistence layers:

* the **cache** (``cache=``, a :class:`repro.fabric.CampaignCache` or a
  directory path) stores each finished cell under its content digest;
  any later campaign touching the same cell is served from it instantly;
* the **journal** (append-only JSONL, one record per line) is written as
  each cell is computed, flushed and fsynced, so a crashed or interrupted
  sweep resumes from disk via ``load_journal`` — only missing cells re-run;
* ``save_campaign`` writes the conventional pretty JSON array once the
  whole grid is done.

Grid cells are pure functions of the spec and their (n, adversary, seed)
coordinates — each worker reruns the cell from its seeds — so a parallel,
stolen, or cached run produces records identical to a serial one, merely
finishing sooner.  ``run_campaign`` always returns records in grid order
regardless of completion order.
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..adversary import (
    RandomOmissionAdversary,
    SilenceAdversary,
    VoteBalancingAdversary,
)
from ..fabric import (
    CampaignCache,
    CellId,
    CellTask,
    DirectoryClaims,
    FabricDispatcher,
    await_cells,
    estimated_cost,
    open_cache,
)
from ..harness import (
    RoundProfiler,
    TraceRecorder,
    available_protocols,
    capability_fingerprint,
    execute,
    protocol_spec,
)
from ..params import ProtocolParams
from ._journal import (
    append_journal_record,
    load_journal_records,
    repair_journal,
)
from .experiments import mixed_inputs

ADVERSARY_FACTORIES = {
    "none": lambda n, t, seed: None,
    "silence": lambda n, t, seed: SilenceAdversary(range(t)),
    "random": lambda n, t, seed: RandomOmissionAdversary(0.6, seed=seed),
    "balance": lambda n, t, seed: VoteBalancingAdversary(seed=seed),
}

#: Per-cell capture channels: attach an observer, merge its output into the
#: record under the same key.
CAPTURES = ("trace", "profile")


def record_cell_key(record: Mapping[str, Any]) -> CellId:
    """The identity under which a finished record can satisfy a grid cell.

    Returns the record's :class:`CellId` — including the options (e.g.
    the tradeoff ``x``), the execution model, and the engine capability
    fingerprint: two sweeps that differ in any identity component must
    never silently reuse each other's records.  Historical journal shapes
    are honoured (see :meth:`CellId.from_record`).  Raises ``KeyError``
    when the mapping is not a cell record.
    """
    cell = CellId.from_record(record)
    if cell is None:
        raise KeyError(f"not a cell record: {sorted(record)}")
    return cell


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of a run grid.

    ``capture`` lists per-cell observer channels (``"trace"`` and/or
    ``"profile"``): each attaches the matching observer to every run and
    merges its output into the record under the same key.  Capture channels
    are diagnostics, not inputs — they are *not* part of a cell's identity,
    so resuming a sweep with different capture settings reuses its records.
    """

    name: str
    protocol: str = "algorithm1"
    ns: Sequence[int] = (64,)
    adversaries: Sequence[str] = ("none",)
    seeds: Sequence[int] = (0,)
    options: dict[str, Any] = field(default_factory=dict)
    capture: Sequence[str] = ()
    #: Execution-model axis: a registered round-model name, or ``None``
    #: for the environment default.  Part of cell identity when set.
    model: str | None = None
    #: Options forwarded to the round-model constructor (e.g. ``gst``);
    #: part of cell identity, valid only with an explicit ``model``.
    model_options: dict[str, Any] = field(default_factory=dict)
    #: Transport axis: a registered transport name, or ``None`` for the
    #: in-process default.  Part of cell identity when set.
    transport: str | None = None
    #: Options forwarded to the transport constructor (e.g.
    #: ``processes_per_worker``); part of cell identity, valid only with
    #: an explicit ``transport``.
    transport_options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        sweepable = available_protocols(sweepable=True)
        if self.protocol not in sweepable:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; choose from {sweepable}"
            )
        if self.model is not None:
            from ..runtime import available_models

            if self.model not in available_models():
                raise ValueError(
                    f"unknown execution model {self.model!r}; choose from "
                    f"{available_models()}"
                )
        elif self.model_options:
            raise ValueError("model_options requires an explicit model")
        if self.transport is not None:
            from ..transport import available_transports

            if self.transport not in available_transports():
                raise ValueError(
                    f"unknown transport {self.transport!r}; choose from "
                    f"{available_transports()}"
                )
        elif self.transport_options:
            raise ValueError(
                "transport_options requires an explicit transport"
            )
        unknown = set(self.adversaries) - set(ADVERSARY_FACTORIES)
        if unknown:
            raise ValueError(
                f"unknown adversaries {sorted(unknown)}; choose from "
                f"{sorted(ADVERSARY_FACTORIES)}"
            )
        object.__setattr__(self, "capture", tuple(self.capture))
        unknown_capture = set(self.capture) - set(CAPTURES)
        if unknown_capture:
            raise ValueError(
                f"unknown capture channels {sorted(unknown_capture)}; "
                f"choose from {CAPTURES}"
            )

    def grid(self):
        """Yield every (n, adversary, seed) cell."""
        for n in self.ns:
            for adversary in self.adversaries:
                for seed in self.seeds:
                    yield n, adversary, seed

    def cell_id(self, n: int, adversary: str, seed: int) -> CellId:
        """Canonical identity of one cell — matches :func:`record_cell_key`."""
        protocol = protocol_spec(self.protocol)
        return CellId.make(
            protocol=self.protocol,
            n=n,
            t=protocol.campaign_t(n, ProtocolParams.practical()),
            adversary=adversary,
            seed=seed,
            options=self.options,
            model=self.model,
            model_options=self.model_options,
            transport=self.transport,
            transport_options=self.transport_options,
        )


def _run_cell(
    spec: CampaignSpec,
    n: int,
    adversary_name: str,
    seed: int,
    record_failures: str | None = None,
) -> tuple[dict[str, Any], dict[str, Any] | None]:
    """Execute one cell; returns ``(record, failure_recipe_payload)``."""
    protocol = protocol_spec(spec.protocol)
    params = ProtocolParams.practical()
    t = protocol.campaign_t(n, params)
    adversary = ADVERSARY_FACTORIES[adversary_name](n, t, seed)
    inputs = mixed_inputs(n)

    observers = []
    recorder = profiler = None
    if "trace" in spec.capture:
        recorder = TraceRecorder(probe=None)
        observers.append(recorder)
    if "profile" in spec.capture:
        profiler = RoundProfiler()
        observers.append(profiler)

    model_options = spec.model_options if spec.model_options else None
    transport_options = (
        spec.transport_options if spec.transport_options else None
    )
    # t stays None: every spec's build resolves the same default budget the
    # adversary above was constructed with (the tradeoff intentionally keeps
    # its own halved internal budget while the record carries campaign_t).
    if record_failures is not None:
        from ..replay import record as record_run, save_recipe
        from ..replay.recipe import recipe_payload

        recorded = record_run(
            spec.protocol,
            inputs,
            adversary=adversary,
            params=params,
            seed=seed,
            observers=observers,
            options=spec.options,
            model=spec.model,
            model_options=model_options,
            transport=spec.transport,
            transport_options=transport_options,
            note=(
                f"campaign {spec.name}: n={n} "
                f"adversary={adversary_name} seed={seed}"
            ),
        )
        if recorded.failed:
            stem = f"{spec.protocol}-n{n}-{adversary_name}-seed{seed}"
            path = save_recipe(
                recorded.recipe, Path(record_failures) / f"{stem}.json"
            )
            failed_record = {
                "campaign": spec.name,
                "protocol": spec.protocol,
                "n": n,
                "t": t,
                "adversary": adversary_name,
                "seed": seed,
                "options": dict(spec.options),
                "engine": capability_fingerprint(),
                "failed": True,
                "invariant": recorded.recipe.expected_failure["invariant"],
                "error": str(recorded.failure),
                "recipe": str(path),
            }
            if spec.model is not None:
                failed_record["model"] = spec.model
                if spec.model_options:
                    failed_record["model_options"] = dict(spec.model_options)
            if spec.transport is not None:
                failed_record["transport"] = spec.transport
                if spec.transport_options:
                    failed_record["transport_options"] = dict(
                        spec.transport_options
                    )
            # The recipe itself rides along so the failure lands in the
            # cache as a self-contained, replayable artifact.
            return failed_record, recipe_payload(recorded.recipe)
        run = recorded.run
    else:
        run = execute(
            protocol,
            inputs,
            adversary=adversary,
            params=params,
            seed=seed,
            observers=observers,
            options=spec.options,
            model=spec.model,
            model_options=model_options,
            transport=spec.transport,
            transport_options=transport_options,
        )

    metrics = run.metrics
    record: dict[str, Any] = {
        "campaign": spec.name,
        "protocol": spec.protocol,
        "n": n,
        "t": t,
        "adversary": adversary_name,
        "seed": seed,
        "options": dict(spec.options),
        "engine": capability_fingerprint(),
        "decision": run.decision,
        "rounds": run.result.time_to_agreement(),
        "messages": metrics.messages_sent,
        "bits": metrics.bits_sent,
        "random_bits": metrics.random_bits,
        "random_calls": metrics.random_calls,
        "faulty": sorted(run.result.faulty),
        "fallback": bool(
            getattr(run, "ran_deterministic_fallback", run.used_fallback)
        ),
    }
    if spec.model is not None:
        # Only model-pinned sweeps carry the keys, so records written by
        # legacy specs keep their exact journal identity.
        record["model"] = spec.model
        if spec.model_options:
            record["model_options"] = dict(spec.model_options)
    if spec.transport is not None:
        # Same conditional-key rule as the model axis.
        record["transport"] = spec.transport
        if spec.transport_options:
            record["transport_options"] = dict(spec.transport_options)
    if protocol.record_extras is not None:
        record.update(protocol.record_extras(run, run.request))
    if recorder is not None:
        record["trace"] = {
            "corruption_rounds": {
                str(pid): round_no
                for pid, round_no in sorted(
                    recorder.corruption_rounds().items()
                )
            },
            "decision_rounds": {
                str(pid): round_no
                for pid, round_no in sorted(recorder.decision_rounds().items())
            },
            "total_omissions": recorder.total_omissions(),
        }
    if profiler is not None:
        record["profile"] = profiler.summary()
    return record, None


def _run_cell_task(
    task: tuple[CampaignSpec, int, str, int, str | None]
) -> tuple[
    tuple[int, str, int], dict[str, Any], dict[str, Any] | None
]:
    """Worker entry point: run one cell, echo its grid coordinates back."""
    spec, n, adversary, seed, record_failures = task
    record, recipe = _run_cell(spec, n, adversary, seed, record_failures)
    return (n, adversary, seed), record, recipe


def load_journal(
    path: str | Path, dedupe: bool = True
) -> list[dict[str, Any]]:
    """Read records from a JSONL journal written by the campaign runner.

    Crash-tolerant: the journal is read as bytes and every line is decoded
    and parsed independently, so a final line truncated mid-append — at
    any byte offset, including the middle of a multi-byte UTF-8 character —
    is skipped rather than fatal, and resume always works.  The skipped
    cell simply re-runs.  :func:`repair_journal` (invoked by every append)
    is what moves such a tail into the quarantine sidecar.

    ``dedupe`` (the default) merges cells that were appended more than
    once — e.g. a sweep re-run under a different ``jobs`` count after a
    partial resume — by **latest-write-wins** on :class:`CellId`: the
    surviving record is the last one appended, at the position of the
    first.  Lines that are not cell records are kept verbatim.  Pass
    ``dedupe=False`` for the raw line-by-line view.
    """
    records = load_journal_records(path)
    if not dedupe:
        return records
    merged: dict[object, dict[str, Any]] = {}
    for index, record in enumerate(records):
        cell = CellId.from_record(record)
        key: object = cell if cell is not None else ("__line__", index)
        merged[key] = record  # latest write wins, first-seen position kept
    return list(merged.values())


def _resolve_resume(
    resume: Sequence[Mapping[str, Any]] | str | Path | None,
    resume_from: Sequence[Mapping[str, Any]] | None,
) -> list[dict[str, Any]]:
    """Normalize the two resume spellings into a record list."""
    records: list[dict[str, Any]] = list(resume_from or ())
    if resume is None:
        return records
    if isinstance(resume, (str, Path)):
        try:
            records.extend(load_journal(resume))
        except FileNotFoundError:
            pass
        return records
    records.extend(resume)
    return records


def run_campaign(
    spec: CampaignSpec,
    resume_from: Sequence[Mapping[str, Any]] | None = None,
    jobs: int = 1,
    journal: str | Path | None = None,
    on_record: Callable[[dict[str, Any]], None] | None = None,
    record_failures: str | Path | None = None,
    *,
    cache: CampaignCache | str | Path | None = None,
    resume: Sequence[Mapping[str, Any]] | str | Path | None = None,
    claims: DirectoryClaims | None = None,
) -> list[dict[str, Any]]:
    """Run every grid cell, serving already-known cells without executing.

    A cell is identified by its :class:`CellId` digest over (protocol, n,
    t, adversary, seed, options, model, model_options, engine capability,
    transport, transport_options) — see :func:`record_cell_key`.  Cells
    are satisfied, in order, from:

    1. ``resume`` — a journal path or a sequence of finished records
       (``resume_from`` is the legacy spelling; both are honoured);
    2. ``cache`` — a content-addressed :class:`repro.fabric.CampaignCache`
       (or a directory path for one) consulted per cell and fed every
       newly computed record, so identical cells are never recomputed
       across campaigns, CLI invocations, or hosts;
    3. execution.  With ``jobs > 1`` the missing cells fan out across a
       work-stealing worker fabric (:class:`repro.fabric.FabricDispatcher`):
       the grid is sharded by estimated cost and idle workers steal from
       stragglers, so one large-``n`` cell cannot idle the pool.  Every
       cell is a pure function of the spec and its seeds, so the records
       are identical to a serial run (the returned list is always in grid
       order).

    ``claims`` (requires ``cache``) enables the multi-host directory
    transport: this process claims the cells it computes via atomic lease
    files, computes only those, and waits for — or, on lease expiry,
    takes over — cells claimed by other hosts sharing the cache.

    ``journal`` names an append-only JSONL file that receives each newly
    computed record the moment it finishes (resumed and cache-served
    records are already durable and are not re-appended).  ``on_record``
    is called with each newly computed record, in completion order.

    ``record_failures`` names a directory: each cell then runs through the
    ``repro.replay`` recorder with invariants on, and a violating cell does
    not abort the sweep — its :class:`~repro.replay.ExecutionRecipe` is
    saved under the directory (and embedded in the cache entry), and the
    cell's journal record carries ``failed: true`` plus the recipe path
    (``summarize_campaign`` skips such records).
    """
    if not isinstance(spec, CampaignSpec):
        raise TypeError(
            "run_campaign takes a CampaignSpec as its single positional "
            f"argument, got {type(spec).__name__!r}; the loose grid-keyword "
            "spelling was removed (see docs/api.md)"
        )
    if claims is not None and cache is None:
        raise ValueError("claims coordination requires a cache")
    store = open_cache(cache) if cache is not None else None
    done: dict[CellId, dict[str, Any]] = {}
    for record in _resolve_resume(resume, resume_from):
        if record.get("campaign") != spec.name:
            continue
        cell = CellId.from_record(record)
        if cell is not None:
            done[cell] = dict(record)

    journal_path = Path(journal) if journal is not None else None
    coords_type = tuple[int, str, int]
    results: dict[coords_type, dict[str, Any]] = {}
    pending: list[tuple[coords_type, CellId]] = []
    for coords in spec.grid():
        cell = spec.cell_id(*coords)
        if cell in done:
            results[coords] = done[cell]
            continue
        if store is not None:
            cached = store.get(cell)
            if cached is not None:
                results[coords] = cached
                continue
        pending.append((coords, cell))

    def finish(
        coords: coords_type,
        cell: CellId,
        record: dict[str, Any],
        recipe: dict[str, Any] | None,
    ) -> None:
        results[coords] = record
        if journal_path is not None:
            append_journal_record(journal_path, record)
        if store is not None:
            store.put(cell, record, recipe=recipe)
        if claims is not None:
            claims.release(cell)
        if on_record is not None:
            on_record(record)

    if claims is not None:
        mine = [item for item in pending if claims.claim(item[1])]
        theirs = [item for item in pending if item[1].digest not in
                  claims.claimed]
    else:
        mine, theirs = pending, []

    failures_dir = (
        str(record_failures) if record_failures is not None else None
    )
    if jobs <= 1 or len(mine) <= 1:
        for coords, cell in mine:
            record, recipe = _run_cell(spec, *coords, failures_dir)
            finish(coords, cell, record, recipe)
    elif mine:
        dispatcher = FabricDispatcher(jobs)
        cells = {coords: cell for coords, cell in mine}
        tasks = [
            CellTask(
                index=index,
                payload=(spec, n, adversary, seed, failures_dir),
                cost=estimated_cost(n),
            )
            for index, ((n, adversary, seed), _) in enumerate(mine)
        ]

        def on_result(
            task: CellTask,
            outcome: tuple[
                coords_type, dict[str, Any], dict[str, Any] | None
            ],
        ) -> None:
            coords, record, recipe = outcome
            finish(coords, cells[coords], record, recipe)

        dispatcher.run(tasks, _run_cell_task, on_result)

    if theirs:
        assert store is not None and claims is not None
        found, abandoned = await_cells(store, theirs, claims)
        for coords, record in found.items():
            results[coords] = record
        for coords, cell in abandoned:
            # The owning host died (or never published): take the lease
            # over and compute locally — idempotent results make a race
            # with a slow-but-alive owner harmless.
            claims.reclaim(cell)
            record, recipe = _run_cell(spec, *coords, failures_dir)
            finish(coords, cell, record, recipe)

    return [results[coords] for coords in spec.grid()]


def save_campaign(
    records: Sequence[dict[str, Any]], path: str | Path
) -> None:
    """Persist campaign records as a JSON array."""
    Path(path).write_text(
        json.dumps(list(records), indent=2, sort_keys=True), encoding="utf-8"
    )


def load_campaign(path: str | Path) -> list[dict[str, Any]]:
    """Read records written by :func:`save_campaign`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def summarize_campaign(
    records: Sequence[dict[str, Any]]
) -> list[dict[str, Any]]:
    """Aggregate records per (protocol, n, adversary): means over seeds."""
    buckets: dict[tuple[str, int, str], list[dict[str, Any]]] = {}
    for record in records:
        if record.get("failed"):
            # Invariant-violating cells (record_failures mode) have no
            # metrics to aggregate; their recipes are on disk instead.
            continue
        cell = CellId.from_record(record)
        if cell is None:
            continue
        buckets.setdefault(cell.series_key(), []).append(record)
    summary = []
    for (protocol, n, adversary), group in sorted(buckets.items()):
        count = len(group)
        summary.append(
            {
                "protocol": protocol,
                "n": n,
                "adversary": adversary,
                "runs": count,
                "mean_rounds": sum(r["rounds"] for r in group) / count,
                "mean_bits": sum(r["bits"] for r in group) / count,
                "mean_random_bits": sum(r["random_bits"] for r in group)
                / count,
                "fallback_rate": sum(r["fallback"] for r in group) / count,
                "decisions": sorted({r["decision"] for r in group}),
            }
        )
    return summary
