"""Batch experiment campaigns: grid sweeps with JSON persistence.

For overnight parameter studies: declare a grid over (protocol, n,
adversary, seeds), run it, and persist one JSON record per run (via the
substrate's serialization helpers), so the analysis can happen offline and
re-runs can resume where they stopped.

A campaign *spec* is data, not code::

    spec = CampaignSpec(
        name="scaling-study",
        protocol="algorithm1",            # or "tradeoff", "early-stopping"
        ns=[64, 144, 256],
        adversaries=["none", "silence", "balance"],
        seeds=[0, 1, 2],
        options={"x": 4},                 # protocol-specific extras
    )
    records = run_campaign(spec)
    save_campaign(records, "scaling-study.json")
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Sequence

from ..adversary import (
    RandomOmissionAdversary,
    SilenceAdversary,
    VoteBalancingAdversary,
)
from ..core import (
    run_consensus,
    run_early_stopping_consensus,
    run_tradeoff_consensus,
)
from ..params import ProtocolParams
from .experiments import mixed_inputs

ADVERSARY_FACTORIES = {
    "none": lambda n, t, seed: None,
    "silence": lambda n, t, seed: SilenceAdversary(range(t)),
    "random": lambda n, t, seed: RandomOmissionAdversary(0.6, seed=seed),
    "balance": lambda n, t, seed: VoteBalancingAdversary(seed=seed),
}

PROTOCOLS = ("algorithm1", "tradeoff", "early-stopping")


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of a run grid."""

    name: str
    protocol: str = "algorithm1"
    ns: Sequence[int] = (64,)
    adversaries: Sequence[str] = ("none",)
    seeds: Sequence[int] = (0,)
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; choose from {PROTOCOLS}"
            )
        unknown = set(self.adversaries) - set(ADVERSARY_FACTORIES)
        if unknown:
            raise ValueError(
                f"unknown adversaries {sorted(unknown)}; choose from "
                f"{sorted(ADVERSARY_FACTORIES)}"
            )

    def grid(self):
        """Yield every (n, adversary, seed) cell."""
        for n in self.ns:
            for adversary in self.adversaries:
                for seed in self.seeds:
                    yield n, adversary, seed


def _run_cell(
    spec: CampaignSpec, n: int, adversary_name: str, seed: int
) -> dict[str, Any]:
    params = ProtocolParams.practical()
    t = params.max_faults(n)
    adversary = ADVERSARY_FACTORIES[adversary_name](n, t, seed)
    inputs = mixed_inputs(n)

    if spec.protocol == "algorithm1":
        run = run_consensus(
            inputs, t=t, adversary=adversary, params=params, seed=seed
        )
    elif spec.protocol == "early-stopping":
        run = run_early_stopping_consensus(
            inputs, t=t, adversary=adversary, params=params, seed=seed
        )
    else:
        x = int(spec.options.get("x", max(2, n // 16)))
        run = run_tradeoff_consensus(
            inputs, x, adversary=adversary, params=params, seed=seed
        )

    metrics = run.metrics
    record: dict[str, Any] = {
        "campaign": spec.name,
        "protocol": spec.protocol,
        "n": n,
        "t": t,
        "adversary": adversary_name,
        "seed": seed,
        "decision": run.decision,
        "rounds": run.result.time_to_agreement(),
        "messages": metrics.messages_sent,
        "bits": metrics.bits_sent,
        "random_bits": metrics.random_bits,
        "random_calls": metrics.random_calls,
        "faulty": sorted(run.result.faulty),
        "fallback": bool(
            getattr(run, "ran_deterministic_fallback", run.used_fallback)
        ),
    }
    if spec.protocol == "early-stopping":
        record["exit_epochs"] = sorted(
            {process.exited_epoch for process in run.processes}
        )
    if spec.protocol == "tradeoff":
        record["x"] = int(spec.options.get("x", max(2, n // 16)))
    return record


def run_campaign(
    spec: CampaignSpec,
    resume_from: Sequence[dict[str, Any]] = (),
) -> list[dict[str, Any]]:
    """Run every grid cell; cells present in ``resume_from`` are reused.

    A cell is identified by (protocol, n, adversary, seed).
    """
    done = {
        (rec["protocol"], rec["n"], rec["adversary"], rec["seed"]): rec
        for rec in resume_from
        if rec.get("campaign") == spec.name
    }
    records = []
    for n, adversary, seed in spec.grid():
        key = (spec.protocol, n, adversary, seed)
        if key in done:
            records.append(done[key])
            continue
        records.append(_run_cell(spec, n, adversary, seed))
    return records


def save_campaign(
    records: Sequence[dict[str, Any]], path: str | Path
) -> None:
    """Persist campaign records as a JSON array."""
    Path(path).write_text(
        json.dumps(list(records), indent=2, sort_keys=True), encoding="utf-8"
    )


def load_campaign(path: str | Path) -> list[dict[str, Any]]:
    """Read records written by :func:`save_campaign`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def summarize_campaign(
    records: Sequence[dict[str, Any]]
) -> list[dict[str, Any]]:
    """Aggregate records per (protocol, n, adversary): means over seeds."""
    buckets: dict[tuple, list[dict[str, Any]]] = {}
    for record in records:
        key = (record["protocol"], record["n"], record["adversary"])
        buckets.setdefault(key, []).append(record)
    summary = []
    for (protocol, n, adversary), group in sorted(buckets.items()):
        count = len(group)
        summary.append(
            {
                "protocol": protocol,
                "n": n,
                "adversary": adversary,
                "runs": count,
                "mean_rounds": sum(r["rounds"] for r in group) / count,
                "mean_bits": sum(r["bits"] for r in group) / count,
                "mean_random_bits": sum(r["random_bits"] for r in group)
                / count,
                "fallback_rate": sum(r["fallback"] for r in group) / count,
                "decisions": sorted({r["decision"] for r in group}),
            }
        )
    return summary
