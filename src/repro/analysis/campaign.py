"""Batch experiment campaigns: parallel grid sweeps with crash-safe resume.

For overnight parameter studies: declare a grid over (protocol, n,
adversary, seeds), run it — optionally across a ``multiprocessing`` worker
pool — and persist one JSON record per run, so the analysis can happen
offline and re-runs can resume where they stopped.

A campaign *spec* is data, not code::

    spec = CampaignSpec(
        name="scaling-study",
        protocol="algorithm1",            # any sweepable registry protocol
        ns=[64, 144, 256],
        adversaries=["none", "silence", "balance"],
        seeds=[0, 1, 2],
        options={"x": 4},                 # protocol-specific extras
    )
    records = run_campaign(spec, jobs=4, journal="scaling-study.jsonl")
    save_campaign(records, "scaling-study.json")

Two persistence layers:

* the **journal** (append-only JSONL, one record per line) is written as
  each cell finishes, flushed and fsynced, so a crashed or interrupted
  sweep resumes from disk via ``load_journal`` — only missing cells re-run;
* ``save_campaign`` writes the conventional pretty JSON array once the
  whole grid is done.

Grid cells are pure functions of the spec and their (n, adversary, seed)
coordinates — each worker reruns the cell from its seeds — so a parallel
run produces records identical to a serial one, merely finishing in a
different wall-clock order.  ``run_campaign`` always returns records in
grid order regardless of completion order.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable, Sequence
from typing import Any

from ..adversary import (
    RandomOmissionAdversary,
    SilenceAdversary,
    VoteBalancingAdversary,
)
from ..harness import (
    RoundProfiler,
    TraceRecorder,
    available_protocols,
    execute,
    protocol_spec,
)
from ..params import ProtocolParams
from .experiments import mixed_inputs

ADVERSARY_FACTORIES = {
    "none": lambda n, t, seed: None,
    "silence": lambda n, t, seed: SilenceAdversary(range(t)),
    "random": lambda n, t, seed: RandomOmissionAdversary(0.6, seed=seed),
    "balance": lambda n, t, seed: VoteBalancingAdversary(seed=seed),
}

#: Per-cell capture channels: attach an observer, merge its output into the
#: record under the same key.
CAPTURES = ("trace", "profile")


def _options_key(options: dict[str, Any]) -> str:
    """Canonical string form of a spec's options, for cell identity."""
    return json.dumps(options, sort_keys=True, separators=(",", ":"))


def record_cell_key(record: dict[str, Any]) -> tuple:
    """The identity under which a finished record can satisfy a grid cell.

    Includes the options (e.g. the tradeoff ``x``): two sweeps that differ
    only in options must never silently reuse each other's records.
    Records written before options were stored count as empty options;
    records written before the execution-model axis count as the default
    model (``None``), so legacy journals still satisfy legacy specs while
    a partial-synchrony sweep never reuses lockstep records.
    """
    return (
        record["protocol"],
        record["n"],
        record["adversary"],
        record["seed"],
        _options_key(record.get("options", {})),
        record.get("model"),
    )


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of a run grid.

    ``capture`` lists per-cell observer channels (``"trace"`` and/or
    ``"profile"``): each attaches the matching observer to every run and
    merges its output into the record under the same key.  Capture channels
    are diagnostics, not inputs — they are *not* part of a cell's identity,
    so resuming a sweep with different capture settings reuses its records.
    """

    name: str
    protocol: str = "algorithm1"
    ns: Sequence[int] = (64,)
    adversaries: Sequence[str] = ("none",)
    seeds: Sequence[int] = (0,)
    options: dict[str, Any] = field(default_factory=dict)
    capture: Sequence[str] = ()
    #: Execution-model axis: a registered round-model name, or ``None``
    #: for the environment default.  Part of cell identity when set.
    model: str | None = None

    def __post_init__(self) -> None:
        sweepable = available_protocols(sweepable=True)
        if self.protocol not in sweepable:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; choose from {sweepable}"
            )
        if self.model is not None:
            from ..runtime import available_models

            if self.model not in available_models():
                raise ValueError(
                    f"unknown execution model {self.model!r}; choose from "
                    f"{available_models()}"
                )
        unknown = set(self.adversaries) - set(ADVERSARY_FACTORIES)
        if unknown:
            raise ValueError(
                f"unknown adversaries {sorted(unknown)}; choose from "
                f"{sorted(ADVERSARY_FACTORIES)}"
            )
        object.__setattr__(self, "capture", tuple(self.capture))
        unknown_capture = set(self.capture) - set(CAPTURES)
        if unknown_capture:
            raise ValueError(
                f"unknown capture channels {sorted(unknown_capture)}; "
                f"choose from {CAPTURES}"
            )

    def grid(self):
        """Yield every (n, adversary, seed) cell."""
        for n in self.ns:
            for adversary in self.adversaries:
                for seed in self.seeds:
                    yield n, adversary, seed

    def cell_key(self, n: int, adversary: str, seed: int) -> tuple:
        """Identity of one cell — must match :func:`record_cell_key`."""
        return (
            self.protocol,
            n,
            adversary,
            seed,
            _options_key(self.options),
            self.model,
        )


def _run_cell(
    spec: CampaignSpec,
    n: int,
    adversary_name: str,
    seed: int,
    record_failures: str | None = None,
) -> dict[str, Any]:
    protocol = protocol_spec(spec.protocol)
    params = ProtocolParams.practical()
    t = protocol.campaign_t(n, params)
    adversary = ADVERSARY_FACTORIES[adversary_name](n, t, seed)
    inputs = mixed_inputs(n)

    observers = []
    recorder = profiler = None
    if "trace" in spec.capture:
        recorder = TraceRecorder(probe=None)
        observers.append(recorder)
    if "profile" in spec.capture:
        profiler = RoundProfiler()
        observers.append(profiler)

    # t stays None: every spec's build resolves the same default budget the
    # adversary above was constructed with (the tradeoff intentionally keeps
    # its own halved internal budget while the record carries campaign_t).
    if record_failures is not None:
        from ..replay import record as record_run, save_recipe

        recorded = record_run(
            spec.protocol,
            inputs,
            adversary=adversary,
            params=params,
            seed=seed,
            observers=observers,
            options=spec.options,
            model=spec.model,
            note=(
                f"campaign {spec.name}: n={n} "
                f"adversary={adversary_name} seed={seed}"
            ),
        )
        if recorded.failed:
            stem = f"{spec.protocol}-n{n}-{adversary_name}-seed{seed}"
            path = save_recipe(
                recorded.recipe, Path(record_failures) / f"{stem}.json"
            )
            failed_record = {
                "campaign": spec.name,
                "protocol": spec.protocol,
                "n": n,
                "t": t,
                "adversary": adversary_name,
                "seed": seed,
                "options": dict(spec.options),
                "failed": True,
                "invariant": recorded.recipe.expected_failure["invariant"],
                "error": str(recorded.failure),
                "recipe": str(path),
            }
            if spec.model is not None:
                failed_record["model"] = spec.model
            return failed_record
        run = recorded.run
    else:
        run = execute(
            protocol,
            inputs,
            adversary=adversary,
            params=params,
            seed=seed,
            observers=observers,
            options=spec.options,
            model=spec.model,
        )

    metrics = run.metrics
    record: dict[str, Any] = {
        "campaign": spec.name,
        "protocol": spec.protocol,
        "n": n,
        "t": t,
        "adversary": adversary_name,
        "seed": seed,
        "options": dict(spec.options),
        "decision": run.decision,
        "rounds": run.result.time_to_agreement(),
        "messages": metrics.messages_sent,
        "bits": metrics.bits_sent,
        "random_bits": metrics.random_bits,
        "random_calls": metrics.random_calls,
        "faulty": sorted(run.result.faulty),
        "fallback": bool(
            getattr(run, "ran_deterministic_fallback", run.used_fallback)
        ),
    }
    if spec.model is not None:
        # Only model-pinned sweeps carry the key, so records written by
        # legacy specs keep their exact journal identity.
        record["model"] = spec.model
    if protocol.record_extras is not None:
        record.update(protocol.record_extras(run, run.request))
    if recorder is not None:
        record["trace"] = {
            "corruption_rounds": {
                str(pid): round_no
                for pid, round_no in sorted(
                    recorder.corruption_rounds().items()
                )
            },
            "decision_rounds": {
                str(pid): round_no
                for pid, round_no in sorted(recorder.decision_rounds().items())
            },
            "total_omissions": recorder.total_omissions(),
        }
    if profiler is not None:
        record["profile"] = profiler.summary()
    return record


def _run_cell_task(
    task: tuple[CampaignSpec, int, str, int, str | None]
) -> tuple[tuple[int, str, int], dict[str, Any]]:
    """Worker entry point: run one cell, echo its grid coordinates back."""
    spec, n, adversary, seed, record_failures = task
    return (n, adversary, seed), _run_cell(
        spec, n, adversary, seed, record_failures
    )


def _start_method() -> str:
    """Prefer ``fork`` (cheap, inherits sys.path) where available."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def append_journal_record(path: str | Path, record: dict[str, Any]) -> None:
    """Append one record to a JSONL journal, flushed and fsynced.

    Each record is a single ``sort_keys`` JSON line, so the journal is both
    greppable and byte-stable for a given record content.  The journal is
    checked for a crash-truncated tail first (:func:`repair_journal`), so a
    new record can never be merged into a partial line left by a crash
    mid-append.
    """
    line = json.dumps(record, sort_keys=True)
    repair_journal(path)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def repair_journal(path: str | Path) -> bytes:
    """Quarantine a crash-truncated journal tail; returns the bytes removed.

    A crash mid-append (despite the fsync-per-record discipline, a record
    write is not atomic at the OS level) can leave the final line without
    its terminating newline — possibly cut mid-record or even mid UTF-8
    character.  Appending to such a journal would merge the next record
    into the partial line, corrupting both.  This restores the invariant
    that every journal byte belongs to a newline-terminated line:

    * a tail that is a complete JSON record merely missing its newline is
      terminated in place (nothing is lost);
    * a genuinely truncated tail is cut from the journal and appended to a
      ``<name>.quarantine`` sidecar next to it, so no bytes are silently
      destroyed; the function returns them (``b""`` when the journal was
      already clean, empty, or absent).
    """
    journal = Path(path)
    try:
        with open(journal, "rb") as handle:
            size = handle.seek(0, os.SEEK_END)
            if size == 0:
                return b""
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) == b"\n":
                return b""
            # Dirty tail: only now pay for reading the whole journal.
            handle.seek(0)
            data = handle.read()
    except FileNotFoundError:
        return b""
    cut = data.rfind(b"\n") + 1  # 0 when no complete line exists at all
    tail = data[cut:]
    try:
        json.loads(tail.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        quarantine = journal.with_name(journal.name + ".quarantine")
        with open(quarantine, "ab") as handle:
            handle.write(tail + b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        with open(journal, "r+b") as handle:
            handle.truncate(cut)
            handle.flush()
            os.fsync(handle.fileno())
        return tail
    # The record survived intact; only its newline went missing.
    with open(journal, "ab") as handle:
        handle.write(b"\n")
        handle.flush()
        os.fsync(handle.fileno())
    return b""


def load_journal(path: str | Path) -> list[dict[str, Any]]:
    """Read records from a JSONL journal written by the campaign runner.

    Crash-tolerant: the journal is read as bytes and every line is decoded
    and parsed independently, so a final line truncated mid-append — at
    any byte offset, including the middle of a multi-byte UTF-8 character —
    is skipped rather than fatal, and ``--resume`` always works.  The
    skipped cell simply re-runs.  :func:`repair_journal` (invoked by every
    append) is what moves such a tail into the quarantine sidecar.
    """
    records: list[dict[str, Any]] = []
    for line in Path(path).read_bytes().split(b"\n"):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError):
            continue
    return records


def run_campaign(
    spec: CampaignSpec,
    resume_from: Sequence[dict[str, Any]] = (),
    jobs: int = 1,
    journal: str | Path | None = None,
    on_record: Callable[[dict[str, Any]], None] | None = None,
    record_failures: str | Path | None = None,
) -> list[dict[str, Any]]:
    """Run every grid cell; cells present in ``resume_from`` are reused.

    A cell is identified by (protocol, n, adversary, seed, options) — see
    :func:`record_cell_key`.  With ``jobs > 1`` the missing cells fan out
    to a ``multiprocessing`` pool; every cell is a pure function of the
    spec and its seeds, so the records are identical to a serial run (the
    returned list is always in grid order).

    ``journal`` names an append-only JSONL file that receives each newly
    computed record the moment it finishes (previously-resumed records are
    already on disk and are not re-appended).  ``on_record`` is called with
    each newly computed record, in completion order.

    ``record_failures`` names a directory: each cell then runs through the
    ``repro.replay`` recorder with invariants on, and a violating cell does
    not abort the sweep — its :class:`~repro.replay.ExecutionRecipe` is
    saved under the directory and the cell's journal record carries
    ``failed: true`` plus the recipe path (``summarize_campaign`` skips such
    records).
    """
    done = {
        record_cell_key(rec): rec
        for rec in resume_from
        if rec.get("campaign") == spec.name
    }
    journal_path = Path(journal) if journal is not None else None
    results: dict[tuple[int, str, int], dict[str, Any]] = {}
    pending: list[tuple[int, str, int]] = []
    for cell in spec.grid():
        key = spec.cell_key(*cell)
        if key in done:
            results[cell] = done[key]
        else:
            pending.append(cell)

    def finish(
        cell: tuple[int, str, int], record: dict[str, Any]
    ) -> None:
        results[cell] = record
        if journal_path is not None:
            append_journal_record(journal_path, record)
        if on_record is not None:
            on_record(record)

    failures_dir = (
        str(record_failures) if record_failures is not None else None
    )
    if jobs <= 1 or len(pending) <= 1:
        for cell in pending:
            finish(cell, _run_cell(spec, *cell, failures_dir))
    elif pending:
        context = multiprocessing.get_context(_start_method())
        tasks = [
            (spec, n, adversary, seed, failures_dir)
            for n, adversary, seed in pending
        ]
        with context.Pool(processes=min(jobs, len(pending))) as pool:
            for cell, record in pool.imap_unordered(_run_cell_task, tasks):
                finish(cell, record)
    return [results[cell] for cell in spec.grid()]


def save_campaign(
    records: Sequence[dict[str, Any]], path: str | Path
) -> None:
    """Persist campaign records as a JSON array."""
    Path(path).write_text(
        json.dumps(list(records), indent=2, sort_keys=True), encoding="utf-8"
    )


def load_campaign(path: str | Path) -> list[dict[str, Any]]:
    """Read records written by :func:`save_campaign`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def summarize_campaign(
    records: Sequence[dict[str, Any]]
) -> list[dict[str, Any]]:
    """Aggregate records per (protocol, n, adversary): means over seeds."""
    buckets: dict[tuple, list[dict[str, Any]]] = {}
    for record in records:
        if record.get("failed"):
            # Invariant-violating cells (record_failures mode) have no
            # metrics to aggregate; their recipes are on disk instead.
            continue
        key = (record["protocol"], record["n"], record["adversary"])
        buckets.setdefault(key, []).append(record)
    summary = []
    for (protocol, n, adversary), group in sorted(buckets.items()):
        count = len(group)
        summary.append(
            {
                "protocol": protocol,
                "n": n,
                "adversary": adversary,
                "runs": count,
                "mean_rounds": sum(r["rounds"] for r in group) / count,
                "mean_bits": sum(r["bits"] for r in group) / count,
                "mean_random_bits": sum(r["random_bits"] for r in group)
                / count,
                "fallback_rate": sum(r["fallback"] for r in group) / count,
                "decisions": sorted({r["decision"] for r in group}),
            }
        )
    return summary
