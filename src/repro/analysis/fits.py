"""Scaling fits: log-log slopes and measured/theory ratio summaries.

Pure-Python least squares — the quantities involved are tiny (a handful of
sweep points), so no numerical library is needed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence


def least_squares_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Slope of the least-squares line through (xs, ys)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a slope")
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    covariance = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    variance = sum((x - mean_x) ** 2 for x in xs)
    if variance == 0:
        raise ValueError("xs are constant; slope undefined")
    return covariance / variance


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Exponent estimate: slope of log y against log x.

    A measured series ``y ~ x^p * polylog(x)`` yields a slope close to ``p``
    (slightly above, because of the polylog) — the benchmark's shape check.
    """
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("log-log fit requires positive data")
    return least_squares_slope(
        [math.log(x) for x in xs], [math.log(y) for y in ys]
    )


@dataclass(frozen=True)
class RatioSummary:
    """How a measured series compares to a theory curve."""

    minimum: float
    maximum: float
    mean: float

    @property
    def spread(self) -> float:
        """max/min of the ratio — a flat ratio (small spread) means the
        measured series follows the theory shape."""
        if self.minimum == 0:
            return math.inf
        return self.maximum / self.minimum


def ratio_summary(
    measured: Sequence[float], predicted: Sequence[float]
) -> RatioSummary:
    """Summarize measured/predicted across a sweep."""
    if len(measured) != len(predicted):
        raise ValueError("series must have equal length")
    if not measured:
        raise ValueError("empty series")
    ratios = []
    for value, reference in zip(measured, predicted):
        if reference <= 0:
            raise ValueError(f"non-positive prediction {reference}")
        ratios.append(value / reference)
    return RatioSummary(
        minimum=min(ratios),
        maximum=max(ratios),
        mean=sum(ratios) / len(ratios),
    )
