"""Monte-Carlo experiment tooling: success rates with confidence intervals.

The paper's guarantees are probabilistic ("whp", "with constant probability
per epoch"); this module measures those probabilities over repeated runs:

* :func:`estimate_rate` — generic trial runner with a Wilson score interval;
* :func:`fallback_rate_vs_epochs` — the epoch-budget ablation: how the
  probability of dropping to the deterministic fallback decays with the
  number of epochs (Lemma 10 predicts a geometric decay: each good epoch
  triple unifies with constant probability);
* :func:`decision_bias` — the decision distribution on balanced inputs
  (the protocol may be biased, but must be *consistent*);
* :func:`agreement_failure_rate` — counts outright agreement/termination
  violations (used by the threshold ablation to show the paper's 18/30 vs
  15/30 gap is load-bearing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from ..core import run_consensus
from ..params import ProtocolParams
from .experiments import mixed_inputs


@dataclass(frozen=True)
class RateEstimate:
    """A Bernoulli rate estimate with a Wilson 95% confidence interval."""

    successes: int
    trials: int
    rate: float
    low: float
    high: float

    def __str__(self) -> str:
        return (
            f"{self.rate:.3f} [{self.low:.3f}, {self.high:.3f}] "
            f"({self.successes}/{self.trials})"
        )


def wilson_interval(
    successes: int, trials: int, z: float = 1.959964
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes {successes} out of range for {trials} trials"
        )
    p_hat = successes / trials
    denominator = 1 + z * z / trials
    center = (p_hat + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(
            p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials)
        )
        / denominator
    )
    low = max(0.0, center - margin)
    high = min(1.0, center + margin)
    if successes == trials:
        high = 1.0
    if successes == 0:
        low = 0.0
    return low, high


def estimate_rate(
    trial: Callable[[int], bool], trials: int, seed: int = 0
) -> RateEstimate:
    """Run ``trial(seed_i)`` repeatedly and estimate its success rate."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    successes = sum(1 for index in range(trials) if trial(seed + index))
    low, high = wilson_interval(successes, trials)
    return RateEstimate(
        successes=successes,
        trials=trials,
        rate=successes / trials,
        low=low,
        high=high,
    )


# ---------------------------------------------------------------------------
# Paper-specific Monte-Carlo experiments.
# ---------------------------------------------------------------------------

def fallback_rate_vs_epochs(
    n: int,
    epoch_counts: Sequence[int],
    trials: int = 20,
    params: ProtocolParams | None = None,
    seed: int = 0,
) -> list[tuple[int, RateEstimate]]:
    """Probability of hitting the Dolev-Strong fallback vs epoch budget.

    Lemma 10 gives a constant per-epoch unification probability on balanced
    inputs, so the fallback rate should decay geometrically in the number
    of epochs — the ablation that justifies the paper's
    Theta(t/sqrt(n) log n) epoch count.
    """
    params = params if params is not None else ProtocolParams.practical()
    inputs = mixed_inputs(n)
    results = []
    for epochs in epoch_counts:
        def fell_back(run_seed: int, epochs=epochs) -> bool:
            run = run_consensus(
                inputs,
                params=params,
                num_epochs=epochs,
                seed=run_seed,
            )
            run.decision  # also asserts correctness
            return run.ran_deterministic_fallback

        results.append(
            (epochs, estimate_rate(fell_back, trials, seed=seed * 1000 + 17))
        )
    return results


def decision_bias(
    n: int,
    trials: int = 20,
    params: ProtocolParams | None = None,
    seed: int = 0,
) -> RateEstimate:
    """Fraction of balanced-input runs deciding 1.

    The biased-majority rule leans toward 0 (the adopt-0 band is wider), so
    the rate is expected well below 1/2 — consistency, not fairness, is the
    protocol's contract."""
    params = params if params is not None else ProtocolParams.practical()
    inputs = mixed_inputs(n)

    def decided_one(run_seed: int) -> bool:
        return run_consensus(inputs, params=params, seed=run_seed).decision == 1

    return estimate_rate(decided_one, trials, seed=seed * 1000 + 29)


def agreement_failure_rate(
    run_factory: Callable[[int], object],
    trials: int = 20,
    seed: int = 0,
) -> RateEstimate:
    """Fraction of runs violating agreement/termination.

    ``run_factory(seed)`` must return an object whose ``decision`` property
    raises ``AssertionError`` on violation (``ConsensusRun`` does).  Used by
    the ablation benches to demonstrate which design choices are
    load-bearing for correctness.
    """

    def violated(run_seed: int) -> bool:
        run = run_factory(run_seed)
        try:
            run.decision
        except AssertionError:
            return True
        return False

    return estimate_rate(violated, trials, seed=seed * 1000 + 31)
