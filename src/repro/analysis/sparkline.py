"""Tiny terminal visualizations: sparklines and horizontal bars.

Benchmarks and the CLI render per-round traffic profiles and sweep curves
inline, without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

#: Eight block heights, lowest to highest.
BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """Render a numeric series as a one-line block-character sparkline.

    ``width`` resamples the series (bucket means) to at most that many
    characters; by default every value gets one character.
    """
    if not values:
        return ""
    series = list(float(v) for v in values)
    if width is not None and width > 0 and len(series) > width:
        bucket = len(series) / width
        series = [
            sum(series[int(i * bucket): max(int(i * bucket) + 1,
                                            int((i + 1) * bucket))])
            / max(1, len(series[int(i * bucket): max(int(i * bucket) + 1,
                                                     int((i + 1) * bucket))]))
            for i in range(width)
        ]
    low = min(series)
    high = max(series)
    span = high - low
    if span <= 0:
        return BARS[0] * len(series)
    # Divide before scaling: (v - low) / span is always a finite value in
    # [0, 1], even when span is subnormal (where 1/span overflows to inf
    # and (v - low) * inf yields nan for v == low).
    return "".join(
        BARS[round((v - low) / span * (len(BARS) - 1))] for v in series
    )


def hbar(
    value: float, maximum: float, width: int = 30, fill: str = "#"
) -> str:
    """A proportional horizontal bar (used in example/CLI tables)."""
    if maximum <= 0:
        return ""
    length = round(width * max(0.0, min(1.0, value / maximum)))
    return fill * length


def render_series(
    label: str, values: Sequence[float], width: int = 60
) -> str:
    """Label + sparkline + min/max annotation on one line."""
    if not values:
        return f"{label}: (empty)"
    return (
        f"{label}: {sparkline(values, width)} "
        f"[{min(values):g}..{max(values):g}]"
    )
