"""Consensus-conformance harness: check a protocol against the model.

Anyone extending this repository with a new consensus protocol (a tuned
variant, a different fallback, a new trade-off point) needs the same
battery every time: agreement, validity and termination across an adversary
gallery and seed set, plus metric sanity.  :func:`check_consensus_protocol`
packages that battery as a library call returning a structured report —
the test suite uses it on the shipped protocols, and `examples` can show
it guarding a custom protocol.

The protocol under test is supplied as a *factory*::

    def factory(inputs: list[int], t: int) -> list[SyncProcess]: ...

so the harness can instantiate it for every scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from ..adversary import (
    RandomOmissionAdversary,
    SilenceAdversary,
    StaticCrashAdversary,
    VoteBalancingAdversary,
)
from ..runtime import Adversary, SyncNetwork, SyncProcess

ProtocolFactory = Callable[[Sequence[int], int], list[SyncProcess]]

#: The default adversary gallery: name -> builder(n, t, seed).
DEFAULT_GALLERY: dict[str, Callable[[int, int, int], Adversary | None]] = {
    "none": lambda n, t, seed: None,
    "silence": lambda n, t, seed: SilenceAdversary(range(t)),
    "staggered-crash": lambda n, t, seed: StaticCrashAdversary(
        {3 * k: [k] for k in range(t)}
    ),
    "random-omission": lambda n, t, seed: RandomOmissionAdversary(
        0.6, seed=seed
    ),
    "balance": lambda n, t, seed: VoteBalancingAdversary(seed=seed),
}


@dataclass(frozen=True)
class ScenarioResult:
    """One (inputs, adversary, seed) cell of the conformance matrix."""

    scenario: str
    adversary: str
    seed: int
    passed: bool
    failure: str = ""
    rounds: int = 0
    decision: object = None


@dataclass
class ConformanceReport:
    """Aggregated outcome of :func:`check_consensus_protocol`."""

    results: list[ScenarioResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    def failures(self) -> list[ScenarioResult]:
        return [result for result in self.results if not result.passed]

    def summary(self) -> str:
        ok = sum(1 for result in self.results if result.passed)
        lines = [f"{ok}/{len(self.results)} scenarios passed"]
        for failure in self.failures():
            lines.append(
                f"  FAIL {failure.scenario} / {failure.adversary} / "
                f"seed {failure.seed}: {failure.failure}"
            )
        return "\n".join(lines)


def _input_scenarios(n: int) -> dict[str, list[int]]:
    return {
        "all-zero": [0] * n,
        "all-one": [1] * n,
        "balanced": [pid % 2 for pid in range(n)],
        "skewed": [1 if pid < (3 * n) // 4 else 0 for pid in range(n)],
    }


def check_consensus_protocol(
    factory: ProtocolFactory,
    n: int,
    t: int,
    seeds: Sequence[int] = (0, 1),
    gallery: dict | None = None,
    max_rounds: int = 200_000,
) -> ConformanceReport:
    """Run the conformance battery; returns a :class:`ConformanceReport`.

    Checks per scenario:

    * **termination + agreement** — every non-faulty process decides, all on
      one value (via ``ExecutionResult.agreement_value``);
    * **validity** — on unanimous inputs the decision equals the common
      input;
    * **metric sanity** — the per-round series sum to the totals, and the
      time metric never exceeds the executed rounds + 1.
    """
    gallery = gallery if gallery is not None else DEFAULT_GALLERY
    report = ConformanceReport()
    for scenario_name, inputs in _input_scenarios(n).items():
        unanimous = len(set(inputs)) == 1
        for adversary_name, build in gallery.items():
            for seed in seeds:
                failure = ""
                rounds = 0
                decision = None
                try:
                    # Conformance drives arbitrary factories with a
                    # pinned gallery: a designated engine fixture.
                    network = SyncNetwork(  # repro-lint: disable=REP008
                        factory(inputs, t),
                        adversary=build(n, t, seed),
                        t=t,
                        seed=seed,
                        max_rounds=max_rounds,
                    )
                    result = network.run()
                    decision = result.agreement_value()
                    rounds = result.time_to_agreement()
                    if unanimous and decision != inputs[0]:
                        failure = (
                            f"validity: decided {decision!r} on unanimous "
                            f"{inputs[0]!r}"
                        )
                    elif sum(result.metrics.messages_per_round) != (
                        result.metrics.messages_sent
                    ):
                        failure = "metrics: per-round series != total"
                    elif rounds > result.metrics.rounds + 1:
                        failure = (
                            f"time metric {rounds} exceeds executed rounds "
                            f"{result.metrics.rounds} + 1"
                        )
                except AssertionError as error:
                    failure = f"correctness: {error}"
                except Exception as error:  # noqa: BLE001 - report, not raise
                    failure = f"crash: {type(error).__name__}: {error}"
                report.results.append(
                    ScenarioResult(
                        scenario=scenario_name,
                        adversary=adversary_name,
                        seed=seed,
                        passed=not failure,
                        failure=failure,
                        rounds=rounds,
                        decision=decision,
                    )
                )
    return report
