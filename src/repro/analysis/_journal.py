"""Crash-safe JSONL journal primitives for the campaign runner.

Extracted from :mod:`repro.analysis.campaign` so the byte-level durability
discipline (fsync-per-record appends, torn-tail quarantine, tolerant
parsing) lives apart from cell identity and scheduling.  The public
surface stays on ``repro.analysis.campaign``; ``load_journal`` there adds
the :class:`~repro.fabric.CellId`-aware duplicate-cell merge on top of the
raw :func:`load_journal_records` parser here.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

__all__ = [
    "append_journal_record",
    "load_journal_records",
    "repair_journal",
]


def append_journal_record(path: str | Path, record: dict[str, Any]) -> None:
    """Append one record to a JSONL journal, flushed and fsynced.

    Each record is a single ``sort_keys`` JSON line, so the journal is both
    greppable and byte-stable for a given record content.  The journal is
    checked for a crash-truncated tail first (:func:`repair_journal`), so a
    new record can never be merged into a partial line left by a crash
    mid-append.
    """
    line = json.dumps(record, sort_keys=True)
    repair_journal(path)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def repair_journal(path: str | Path) -> bytes:
    """Quarantine a crash-truncated journal tail; returns the bytes removed.

    A crash mid-append (despite the fsync-per-record discipline, a record
    write is not atomic at the OS level) can leave the final line without
    its terminating newline — possibly cut mid-record or even mid UTF-8
    character.  Appending to such a journal would merge the next record
    into the partial line, corrupting both.  This restores the invariant
    that every journal byte belongs to a newline-terminated line:

    * a tail that is a complete JSON record merely missing its newline is
      terminated in place (nothing is lost);
    * a genuinely truncated tail is cut from the journal and appended to a
      ``<name>.quarantine`` sidecar next to it, so no bytes are silently
      destroyed; the function returns them (``b""`` when the journal was
      already clean, empty, or absent).
    """
    journal = Path(path)
    try:
        with open(journal, "rb") as handle:
            size = handle.seek(0, os.SEEK_END)
            if size == 0:
                return b""
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) == b"\n":
                return b""
            # Dirty tail: only now pay for reading the whole journal.
            handle.seek(0)
            data = handle.read()
    except FileNotFoundError:
        return b""
    cut = data.rfind(b"\n") + 1  # 0 when no complete line exists at all
    tail = data[cut:]
    try:
        json.loads(tail.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        quarantine = journal.with_name(journal.name + ".quarantine")
        with open(quarantine, "ab") as handle:
            handle.write(tail + b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        with open(journal, "r+b") as handle:
            handle.truncate(cut)
            handle.flush()
            os.fsync(handle.fileno())
        return tail
    # The record survived intact; only its newline went missing.
    with open(journal, "ab") as handle:
        handle.write(b"\n")
        handle.flush()
        os.fsync(handle.fileno())
    return b""


def load_journal_records(path: str | Path) -> list[dict[str, Any]]:
    """Raw line-by-line parse of a JSONL journal (no deduplication).

    Crash-tolerant: every line is decoded and parsed independently, so a
    final line truncated mid-append — at any byte offset, including the
    middle of a multi-byte UTF-8 character — is skipped rather than fatal.
    """
    records: list[dict[str, Any]] = []
    for line in Path(path).read_bytes().split(b"\n"):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError):
            continue
    return records
