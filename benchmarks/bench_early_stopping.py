"""E-ES — Section-6 extension: the early-stopping variant's adaptivity.

The paper's future-work section asks for protocols whose cost adapts to the
actual hardness of the instance; the omission literature it cites ([33],
[34]) calls this early stopping.  This bench measures the READY-poll
variant (:mod:`repro.core.early_stopping`) against the fixed-budget
Algorithm 1 across instance hardness: the easier the instance, the earlier
the exit, with identical decisions throughout.
"""

from conftest import print_series

from repro.adversary import SilenceAdversary, VoteBalancingAdversary
from repro.core import run_consensus, run_early_stopping_consensus
from repro.params import ProtocolParams

N = 96
PARAMS = ProtocolParams.practical()


def test_rounds_adapt_to_instance_hardness(benchmark):
    def workload():
        rows = []
        cases = [
            ("unanimous", [1] * N, None),
            ("90-10 skew", [1 if pid < 86 else 0 for pid in range(N)], None),
            ("balanced", [pid % 2 for pid in range(N)], None),
            (
                "balanced+balancer",
                [pid % 2 for pid in range(N)],
                VoteBalancingAdversary(seed=2),
            ),
        ]
        for label, inputs, adversary in cases:
            fixed = run_consensus(inputs, params=PARAMS, seed=17)
            adaptive = run_early_stopping_consensus(
                inputs, adversary=adversary, params=PARAMS, seed=17
            )
            exits = sorted(
                {process.exited_epoch for process in adaptive.processes}
            )
            rows.append(
                [
                    label,
                    fixed.result.time_to_agreement(),
                    adaptive.result.time_to_agreement(),
                    exits,
                    adaptive.decision == fixed.decision
                    or adaptive.decision in (0, 1),
                ]
            )
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series(
        f"early stopping vs fixed budget (n={N})",
        ["instance", "fixed T", "adaptive T", "exit epochs", "consistent"],
        rows,
    )
    unanimous, skew, balanced = rows[0], rows[1], rows[2]
    # Easy instances exit far earlier than the fixed budget...
    assert unanimous[2] < unanimous[1] / 3
    assert skew[2] < skew[1]
    # ...and hardness ordering shows in the exit epochs.
    assert min(unanimous[3]) <= min(balanced[3])
    assert all(row[4] for row in rows)


def test_early_stopping_safe_under_ready_suppression(benchmark):
    """Agreement holds across seeds even when the adversary suppresses
    faulty READY votes to desynchronize the exits."""

    def workload():
        outcomes = []
        t = PARAMS.max_faults(N)
        for seed in range(6):
            run = run_early_stopping_consensus(
                [1] * N,
                t=t,
                adversary=SilenceAdversary(range(t)),
                params=PARAMS,
                seed=300 + seed,
            )
            outcomes.append(
                (run.decision, len({p.exited_epoch for p in run.processes}))
            )
        return outcomes

    outcomes = benchmark.pedantic(workload, rounds=1, iterations=1)
    print(f"\n(decision, distinct exit epochs) per seed: {outcomes}")
    assert all(decision == 1 for decision, _ in outcomes)
