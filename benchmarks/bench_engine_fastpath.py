"""Round-engine multicast fast path vs the legacy per-message path.

An all-to-all broadcast round is the paper's dominant traffic shape (every
phase of Algorithm 3 fans the same payload out to large committees), and it
is exactly where the per-message engine wasted work: one ``payload_bits``
call, one :class:`Message` construction, and one outbox/bucket entry per
copy.  The :class:`Multicast` fast path queues one record per broadcast,
sizes the payload once, and materializes per-recipient views only at inbox
delivery.

This bench pits the two APIs against each other on the same workload:

* *legacy* — an explicit ``env.send`` loop over all other processes (the
  pre-multicast idiom, still fully supported);
* *fastpath* — one ``env.broadcast`` per round.

Both executions must be byte-identical — same decisions, same rounds, same
value for every :class:`Metrics` counter and per-round series — and the
fast path must be at least ``--threshold`` times faster (2.5x at the
default n=512; the ``--quick`` CI smoke run uses a smaller instance and a
softer bar because shared runners are noisy).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_fastpath.py
    PYTHONPATH=src python benchmarks/bench_engine_fastpath.py --quick \
        --json BENCH_engine_fastpath.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

from repro.runtime import Metrics, SyncNetwork, SyncProcess


def certificate_payload(pid: int, round_no: int) -> tuple:
    """A protocol-shaped broadcast payload: tag, round, sender, value, a
    membership mask, and a small nested certificate tuple (the recursive
    ``payload_bits`` case every real phase message exercises)."""
    return (
        3,
        round_no,
        pid,
        pid & 7,
        1 << (pid % 61),
        (pid, round_no, 1, 0, 1, pid ^ round_no),
    )


class LoopSender(SyncProcess):
    """All-to-all via the legacy idiom: one ``env.send`` per recipient."""

    rounds = 4

    def program(self, env):
        for round_no in range(self.rounds):
            payload = certificate_payload(self.pid, round_no)
            for recipient in range(self.n):
                if recipient != self.pid:
                    env.send(recipient, payload)
            yield
        env.decide(0)


class MulticastSender(SyncProcess):
    """All-to-all via the redesigned API: one ``env.broadcast`` per round."""

    rounds = 4

    def program(self, env):
        for round_no in range(self.rounds):
            env.broadcast(certificate_payload(self.pid, round_no))
            yield
        env.decide(0)


def fingerprint(result) -> dict[str, Any]:
    """Everything that must match byte-for-byte between the two paths."""
    metrics: Metrics = result.metrics
    return {
        "decisions": result.decisions,
        "rounds": result.rounds,
        "all_terminated": result.all_terminated,
        "metrics": metrics.summary(),
        "messages_per_round": metrics.messages_per_round,
        "bits_per_round": metrics.bits_per_round,
    }


def run_once(process_cls, n: int, rounds: int, seed: int):
    process_cls = type(
        process_cls.__name__, (process_cls,), {"rounds": rounds}
    )
    network = SyncNetwork(
        [process_cls(pid, n) for pid in range(n)], seed=seed
    )
    started = time.perf_counter()
    result = network.run()
    return time.perf_counter() - started, result


def bench(n: int, rounds: int, repeats: int, seed: int) -> dict[str, Any]:
    """Interleaved best-of-``repeats`` timing of both paths."""
    best = {"legacy": float("inf"), "fastpath": float("inf")}
    prints: dict[str, dict[str, Any]] = {}
    for _ in range(repeats):
        for name, cls in (
            ("legacy", LoopSender),
            ("fastpath", MulticastSender),
        ):
            elapsed, result = run_once(cls, n, rounds, seed)
            best[name] = min(best[name], elapsed)
            prints[name] = fingerprint(result)
    copies = n * (n - 1) * rounds
    return {
        "n": n,
        "rounds": rounds,
        "repeats": repeats,
        "message_copies": copies,
        "legacy_seconds": best["legacy"],
        "fastpath_seconds": best["fastpath"],
        "legacy_copies_per_second": copies / best["legacy"],
        "fastpath_copies_per_second": copies / best["fastpath"],
        "speedup": best["legacy"] / best["fastpath"],
        "identical": prints["legacy"] == prints["fastpath"],
        "metrics": prints["fastpath"]["metrics"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke configuration: n=128, 2 repeats, 1.3x bar",
    )
    parser.add_argument("--n", type=int, default=None, help="process count")
    parser.add_argument(
        "--rounds", type=int, default=4, help="broadcast rounds per run"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="interleaved repetitions"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="minimum accepted speedup (default 2.5, or 1.3 with --quick)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write the result JSON"
    )
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (128 if args.quick else 512)
    repeats = (
        args.repeats if args.repeats is not None else (2 if args.quick else 3)
    )
    threshold = (
        args.threshold
        if args.threshold is not None
        else (1.3 if args.quick else 2.5)
    )

    record = bench(n=n, rounds=args.rounds, repeats=repeats, seed=7)
    record["threshold"] = threshold
    record["quick"] = args.quick

    print(
        f"n={record['n']} rounds={record['rounds']} "
        f"copies={record['message_copies']}"
    )
    print(
        f"legacy   (send loop):  {record['legacy_seconds']:.3f} s  "
        f"({record['legacy_copies_per_second']:,.0f} copies/s)"
    )
    print(
        f"fastpath (broadcast):  {record['fastpath_seconds']:.3f} s  "
        f"({record['fastpath_copies_per_second']:,.0f} copies/s)"
    )
    print(f"speedup: {record['speedup']:.2f}x (threshold {threshold}x)")
    print(f"byte-identical executions: {record['identical']}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    if not record["identical"]:
        print("FAIL: executions diverged between the two paths")
        return 1
    if record["speedup"] < threshold:
        print("FAIL: speedup below threshold")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
