"""Round-engine delivery paths: legacy sends vs multicast vs columnar.

An all-to-all broadcast round is the paper's dominant traffic shape (every
phase of Algorithm 3 fans the same payload out to large committees), and
it is exactly where a per-copy engine wastes work.  This bench pits three
arms against each other on the same workload:

* *legacy* — an explicit ``env.send`` loop over all other processes on
  the object engine (the pre-multicast idiom, still fully supported);
* *fastpath* — one ``env.broadcast`` per round on the object engine
  (the PR 4 multicast fast path: one record queued per broadcast, per-copy
  ``Message`` views materialized at inbox delivery);
* *columnar* — the same broadcasts on the numpy engine
  (``SyncNetwork(columnar=True)``): delivery planned as array math over
  contiguous copy vectors, inboxes handed out as lazy views.

All executions must be byte-identical — same decisions, same rounds, same
value for every :class:`Metrics` counter and per-round series — and each
tier must clear its speedup bar: ``--threshold`` for fastpath over legacy
(2.5x at the default n=512) and ``--columnar-threshold`` for columnar
over fastpath (10x at the default n=512; the ``--quick`` CI smoke run
uses a smaller instance and softer bars because shared runners are
noisy).

CI additionally gates on throughput regressions: ``--baseline PATH``
compares each arm's copies/second against a previously uploaded result
JSON and fails when any arm drops more than ``--max-regression``
(default 15%).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_fastpath.py
    PYTHONPATH=src python benchmarks/bench_engine_fastpath.py --quick \
        --engine both --json BENCH_engine_fastpath.json
    PYTHONPATH=src python benchmarks/bench_engine_fastpath.py --n 1024 \
        --baseline BENCH_engine_fastpath.json --max-regression 0.15
    PYTHONPATH=src python benchmarks/bench_engine_fastpath.py \
        --scaling 512,1024,2048,4096   # Table-1 style engine scaling
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

from repro.runtime import HAVE_NUMPY, Metrics, SyncNetwork, SyncProcess


def certificate_payload(pid: int, round_no: int) -> tuple:
    """A protocol-shaped broadcast payload: tag, round, sender, value, a
    membership mask, and a small nested certificate tuple (the recursive
    ``payload_bits`` case every real phase message exercises)."""
    return (
        3,
        round_no,
        pid,
        pid & 7,
        1 << (pid % 61),
        (pid, round_no, 1, 0, 1, pid ^ round_no),
    )


class LoopSender(SyncProcess):
    """All-to-all via the legacy idiom: one ``env.send`` per recipient."""

    rounds = 4

    def program(self, env):
        for round_no in range(self.rounds):
            payload = certificate_payload(self.pid, round_no)
            for recipient in range(self.n):
                if recipient != self.pid:
                    env.send(recipient, payload)
            yield
        env.decide(0)


class MulticastSender(SyncProcess):
    """All-to-all via the redesigned API: one ``env.broadcast`` per round."""

    rounds = 4

    def program(self, env):
        for round_no in range(self.rounds):
            env.broadcast(certificate_payload(self.pid, round_no))
            yield
        env.decide(0)


#: arm name -> (process class, columnar engine flag)
ARMS: dict[str, tuple[type[SyncProcess], bool]] = {
    "legacy": (LoopSender, False),
    "fastpath": (MulticastSender, False),
    "columnar": (MulticastSender, True),
}

#: ``--engine`` -> which arms run.
ENGINE_ARMS = {
    "object": ("legacy", "fastpath"),
    "columnar": ("fastpath", "columnar"),
    "both": ("legacy", "fastpath", "columnar"),
}


def fingerprint(result) -> dict[str, Any]:
    """Everything that must match byte-for-byte between the paths."""
    metrics: Metrics = result.metrics
    return {
        "decisions": result.decisions,
        "rounds": result.rounds,
        "all_terminated": result.all_terminated,
        "metrics": metrics.summary(),
        "messages_per_round": metrics.messages_per_round,
        "bits_per_round": metrics.bits_per_round,
    }


def run_once(process_cls, n: int, rounds: int, seed: int, columnar: bool):
    process_cls = type(
        process_cls.__name__, (process_cls,), {"rounds": rounds}
    )
    network = SyncNetwork(
        [process_cls(pid, n) for pid in range(n)],
        seed=seed,
        columnar=columnar,
    )
    started = time.perf_counter()
    result = network.run()
    return time.perf_counter() - started, result


def bench(
    arms: tuple[str, ...], n: int, rounds: int, repeats: int, seed: int
) -> dict[str, Any]:
    """Interleaved best-of-``repeats`` timing of the selected arms."""
    best = {name: float("inf") for name in arms}
    prints: dict[str, dict[str, Any]] = {}
    for _ in range(repeats):
        for name in arms:
            cls, columnar = ARMS[name]
            elapsed, result = run_once(cls, n, rounds, seed, columnar)
            best[name] = min(best[name], elapsed)
            prints[name] = fingerprint(result)
    copies = n * (n - 1) * rounds
    record: dict[str, Any] = {
        "n": n,
        "rounds": rounds,
        "repeats": repeats,
        "arms": list(arms),
        "message_copies": copies,
        "identical": len({json.dumps(p, sort_keys=True) for p in prints.values()})
        == 1,
        "metrics": prints[arms[-1]]["metrics"],
    }
    for name in arms:
        record[f"{name}_seconds"] = best[name]
        record[f"{name}_copies_per_second"] = copies / best[name]
    if "legacy" in best and "fastpath" in best:
        record["speedup"] = best["legacy"] / best["fastpath"]
    if "fastpath" in best and "columnar" in best:
        record["columnar_speedup"] = best["fastpath"] / best["columnar"]
    return record


def check_baseline(
    record: dict[str, Any], baseline: dict[str, Any], max_regression: float
) -> list[str]:
    """Per-arm throughput regressions beyond ``max_regression``."""
    failures: list[str] = []
    for key in ("n", "rounds"):
        if baseline.get(key) != record[key]:
            failures.append(
                f"baseline {key}={baseline.get(key)} does not match this "
                f"run's {key}={record[key]}; refusing to compare"
            )
            return failures
    for name in record["arms"]:
        key = f"{name}_copies_per_second"
        old = baseline.get(key)
        if old is None:
            continue
        new = record[key]
        floor = old * (1.0 - max_regression)
        if new < floor:
            failures.append(
                f"{name}: {new:,.0f} copies/s is "
                f"{1.0 - new / old:.1%} below baseline {old:,.0f} "
                f"(allowed {max_regression:.0%})"
            )
    return failures


def scaling_table(ns: list[int], rounds: int, seed: int) -> list[dict[str, Any]]:
    """Columnar-engine throughput cells for a Table-1 style scaling sweep."""
    cells = []
    for n in ns:
        elapsed, result = run_once(MulticastSender, n, rounds, seed, True)
        copies = n * (n - 1) * rounds
        cells.append(
            {
                "n": n,
                "rounds": rounds,
                "seconds": elapsed,
                "message_copies": copies,
                "copies_per_second": copies / elapsed,
                "bits_sent": result.metrics.bits_sent,
            }
        )
    return cells


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke configuration: n=128, 2 repeats, softened bars",
    )
    parser.add_argument("--n", type=int, default=None, help="process count")
    parser.add_argument(
        "--rounds", type=int, default=4, help="broadcast rounds per run"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="interleaved repetitions"
    )
    parser.add_argument(
        "--engine",
        choices=sorted(ENGINE_ARMS),
        default="both",
        help="which delivery engines to run (default both)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="minimum fastpath-over-legacy speedup "
        "(default 2.5, or 1.3 with --quick)",
    )
    parser.add_argument(
        "--columnar-threshold",
        type=float,
        default=None,
        help="minimum columnar-over-fastpath speedup "
        "(default 10.0, or 2.0 with --quick)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="previous result JSON to gate throughput regressions against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.15,
        help="maximum tolerated per-arm copies/s drop vs --baseline "
        "(default 0.15)",
    )
    parser.add_argument(
        "--scaling",
        metavar="N1,N2,...",
        default=None,
        help="instead of the arm comparison, run the columnar engine once "
        "per listed n and print the throughput scaling table",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="write the result JSON"
    )
    args = parser.parse_args(argv)

    if args.engine != "object" and not HAVE_NUMPY:
        print("SKIP: numpy unavailable; only --engine object can run")
        return 0 if args.engine == "both" else 1

    if args.scaling is not None:
        ns = [int(part) for part in args.scaling.split(",") if part]
        cells = scaling_table(ns, rounds=args.rounds, seed=7)
        print(f"columnar engine scaling ({args.rounds} all-to-all rounds)")
        print(f"{'n':>6} {'copies':>12} {'seconds':>9} {'copies/s':>13}")
        for cell in cells:
            print(
                f"{cell['n']:>6} {cell['message_copies']:>12,} "
                f"{cell['seconds']:>9.3f} {cell['copies_per_second']:>13,.0f}"
            )
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump({"scaling": cells}, handle, indent=2, sort_keys=True)
            print(f"wrote {args.json}")
        return 0

    n = args.n if args.n is not None else (128 if args.quick else 512)
    repeats = (
        args.repeats if args.repeats is not None else (2 if args.quick else 3)
    )
    threshold = (
        args.threshold
        if args.threshold is not None
        else (1.3 if args.quick else 2.5)
    )
    columnar_threshold = (
        args.columnar_threshold
        if args.columnar_threshold is not None
        else (2.0 if args.quick else 10.0)
    )

    arms = ENGINE_ARMS[args.engine]
    record = bench(arms, n=n, rounds=args.rounds, repeats=repeats, seed=7)
    record["threshold"] = threshold
    record["columnar_threshold"] = columnar_threshold
    record["quick"] = args.quick

    print(
        f"n={record['n']} rounds={record['rounds']} "
        f"copies={record['message_copies']} engine={args.engine}"
    )
    labels = {
        "legacy": "legacy   (send loop, object)",
        "fastpath": "fastpath (broadcast, object)",
        "columnar": "columnar (broadcast, numpy) ",
    }
    for name in arms:
        print(
            f"{labels[name]}: {record[f'{name}_seconds']:.3f} s  "
            f"({record[f'{name}_copies_per_second']:,.0f} copies/s)"
        )
    if "speedup" in record:
        print(
            f"fastpath speedup: {record['speedup']:.2f}x "
            f"(threshold {threshold}x)"
        )
    if "columnar_speedup" in record:
        print(
            f"columnar speedup: {record['columnar_speedup']:.2f}x over "
            f"fastpath (threshold {columnar_threshold}x)"
        )
    print(f"byte-identical executions: {record['identical']}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    if not record["identical"]:
        print("FAIL: executions diverged between the engine paths")
        return 1
    if "speedup" in record and record["speedup"] < threshold:
        print("FAIL: fastpath speedup below threshold")
        return 1
    if (
        "columnar_speedup" in record
        and record["columnar_speedup"] < columnar_threshold
    ):
        print("FAIL: columnar speedup below threshold")
        return 1
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = check_baseline(record, baseline, args.max_regression)
        for failure in failures:
            print(f"FAIL: regression vs baseline: {failure}")
        if failures:
            return 1
        print(
            f"no arm regressed more than {args.max_regression:.0%} vs "
            f"{args.baseline}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
