"""E-TH1 — Theorem 1/5 scaling: rounds, bits, random bits vs n.

The paper claims O(sqrt(n) log^2 n) rounds, O(n^2 log^3 n) bits and
O(n^{3/2} log^2 n) random bits at t = Theta(n).  This bench sweeps n under
the adaptive vote-balancing adversary and reports log-log slopes: the
measured exponents must sit below quadratic-in-rounds (the Dolev-Strong
regime the paper displaces) and near the predicted powers.
"""

from conftest import print_series

from repro.analysis import (
    loglog_slope,
    measure_consensus_scaling,
    balancing_adversary,
)
from repro.analysis.theory import theorem1_rounds

NS = [64, 100, 144, 196, 256, 400]


def test_theorem1_scaling_shapes(benchmark):
    points = benchmark.pedantic(
        lambda: measure_consensus_scaling(
            NS, adversary_factory=balancing_adversary, seed=1
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for point in points:
        rows.append(
            [
                point.n,
                point.t,
                point.rounds,
                point.bits_sent,
                point.random_bits,
                f"{theorem1_rounds(point.n, point.t):.1f}",
                point.used_fallback,
            ]
        )
    print_series(
        "Theorem 1 scaling under the vote-balancing adversary",
        ["n", "t", "rounds", "bits", "rbits", "thy-rounds", "fallback"],
        rows,
    )

    ns = [point.n for point in points]
    round_slope = loglog_slope(ns, [point.rounds for point in points])
    bits_slope = loglog_slope(ns, [point.bits_sent for point in points])
    rbits_slope = loglog_slope(
        ns, [max(1, point.random_bits) for point in points]
    )
    print(
        f"\nlog-log slopes: rounds={round_slope:.2f} (theory ~0.5+polylog), "
        f"bits={bits_slope:.2f} (theory ~2+polylog), "
        f"random={rbits_slope:.2f} (theory ~1.5+polylog)"
    )

    # Shape assertions (generous polylog slack):
    assert round_slope < 1.3, "rounds must scale sublinearly (vs O(t) baseline)"
    assert 1.4 < bits_slope < 2.8, "bits must scale ~quadratically"
    assert 0.5 < rbits_slope < 2.3, "randomness must scale ~n^1.5"


def test_theorem1_rounds_beat_linear_baseline(benchmark):
    """Who wins: Algorithm 1's measured rounds grow far slower than the
    t-linear deterministic baseline at the same fault density."""
    points = benchmark.pedantic(
        lambda: measure_consensus_scaling(NS, seed=2), rounds=1, iterations=1
    )
    small, large = points[0], points[-1]
    growth = large.rounds / small.rounds
    linear_growth = large.n / small.n
    print(
        f"\nrounds growth x{growth:.2f} over n x{linear_growth:.1f} "
        f"(a t-linear protocol would grow x{linear_growth:.1f})"
    )
    assert growth < linear_growth


def test_theorem1_validity_costs_no_randomness(benchmark):
    """Unanimous inputs must terminate with zero random bits at every n."""
    def workload():
        from repro.core import run_consensus

        results = []
        for n in (64, 144):
            run = run_consensus([1] * n, seed=3)
            results.append((n, run.decision, run.metrics.random_bits))
        return results

    results = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series(
        "validity fast-path", ["n", "decision", "random bits"], results
    )
    for _n, decision, random_bits in results:
        assert decision == 1
        assert random_bits == 0
