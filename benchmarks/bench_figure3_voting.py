"""E-F3 — Figure 3: the biased-majority thresholds in action.

Figure 3 illustrates the vote bands (adopt-0 below 15/30, coin between
15/30 and 18/30, adopt-1 above, decide outside 3/30..27/30).  This bench
regenerates the figure empirically two ways:

1. band classification of the pure vote rule across the full ratio axis;
2. end-to-end epoch dynamics: for each initial 1-fraction, how many epochs
   Algorithm 1 needs before the operative processes unify (and how the
   vote-balancing adversary shifts that distribution).
"""

from conftest import print_series

from repro.core import apply_vote_rule, run_consensus
from repro.params import ProtocolParams
from repro.runtime import CountingRandom

PARAMS = ProtocolParams.practical()
N = 100


def test_vote_rule_band_map(benchmark):
    def workload():
        total = 30
        rows = []
        for ones in range(total + 1):
            outcome = apply_vote_rule(
                ones, total - ones, PARAMS, CountingRandom(ones)
            )
            band = (
                "decide-1" if outcome.decided and outcome.bit == 1 else
                "decide-0" if outcome.decided else
                "coin" if outcome.used_coin else
                f"adopt-{outcome.bit}"
            )
            rows.append([f"{ones}/{total}", band])
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series("Figure 3 band map (counts out of 30)", ["ones", "band"], rows)
    bands = [band for _, band in rows]
    # The paper's band order along the ratio axis.
    assert bands[0] == "decide-0"
    assert bands[-1] == "decide-1"
    assert "coin" in bands
    assert bands.index("coin") > bands.index("adopt-0")
    assert "adopt-1" in bands[bands.index("coin"):]


def test_epochs_to_unify_vs_initial_fraction(benchmark):
    """Sweep the initial 1-fraction; report decision value and whether the
    epochs fast path decided — the empirical Figure 3."""

    def workload():
        rows = []
        for ones in (0, 10, 30, 50, 70, 90, 100):
            inputs = [1] * ones + [0] * (N - ones)
            run = run_consensus(inputs, t=3, seed=ones + 1)
            rows.append(
                [
                    f"{ones}%",
                    run.decision,
                    run.metrics.random_bits,
                    run.ran_deterministic_fallback,
                ]
            )
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series(
        "epoch dynamics vs initial 1-fraction (n=100)",
        ["ones", "decision", "random bits", "fallback"],
        rows,
    )
    by_fraction = {row[0]: row for row in rows}
    # Clear majorities must win and spend no randomness at the extremes.
    assert by_fraction["0%"][1] == 0 and by_fraction["0%"][2] == 0
    assert by_fraction["100%"][1] == 1 and by_fraction["100%"][2] == 0
    assert by_fraction["90%"][1] == 1
    assert by_fraction["10%"][1] == 0 if "10%" in by_fraction else True
    assert by_fraction["30%"][1] == 0
    assert by_fraction["70%"][1] == 1


def test_threshold_gap_beats_perturbation(benchmark):
    """The 18/30-vs-15/30 gap exceeds the worst inoperative fraction, so
    two operative processes can never deterministically split (the property
    Figure 3's geometry encodes)."""

    def workload():
        violations = 0
        total = 300
        max_perturbation = total // 10  # 3t/n with t < n/30
        for ones in range(total + 1):
            for shift in (0, max_perturbation):
                other = max(0, ones - shift)
                first = apply_vote_rule(
                    ones, total - ones, PARAMS, CountingRandom(1)
                )
                second = apply_vote_rule(
                    other, total - ones, PARAMS, CountingRandom(2)
                )
                if (
                    not first.used_coin
                    and not second.used_coin
                    and first.bit != second.bit
                ):
                    violations += 1
        return violations

    violations = benchmark.pedantic(workload, rounds=1, iterations=1)
    print(f"\ndeterministic splits under max perturbation: {violations}")
    assert violations == 0
