"""E-CR — the campaign execution engine and the adversary-view hot path.

Two substrate-level properties behind every other benchmark's numbers:

* the parallel campaign runner is a pure fan-out — ``jobs=N`` produces
  records byte-identical to a serial sweep, merely finishing sooner;
* the :class:`NetworkView` message indexes answer the adversary's
  per-round queries from a once-per-round index instead of O(m) rescans,
  and agree exactly with the naive definition.
"""

import json

from conftest import print_series

from repro.analysis.campaign import CampaignSpec, run_campaign
from repro.runtime import Message, NetworkView

SPEC = CampaignSpec(
    name="bench-campaign",
    protocol="algorithm1",
    ns=[33, 48],
    adversaries=["none", "silence"],
    seeds=[0],
)


def test_parallel_campaign_matches_serial(benchmark):
    serial = run_campaign(SPEC, jobs=1)
    fanned = benchmark.pedantic(
        lambda: run_campaign(SPEC, jobs=2), rounds=1, iterations=1
    )
    assert json.dumps(fanned, sort_keys=True) == json.dumps(
        serial, sort_keys=True
    )
    print_series(
        "parallel campaign (jobs=2) vs serial — identical records",
        ["protocol", "n", "adversary", "seed", "rounds", "bits"],
        [
            [r["protocol"], r["n"], r["adversary"], r["seed"], r["rounds"],
             r["bits"]]
            for r in fanned
        ],
    )


def _dense_view(n: int) -> NetworkView:
    messages = [
        Message(sender, recipient, ("payload", sender))
        for sender in range(n)
        for recipient in range(n)
        if sender != recipient
    ]
    return NetworkView(
        round_no=0,
        processes=[],
        messages=messages,
        faulty=frozenset(),
        budget_left=0,
        decisions={},
        terminated=frozenset(),
    )


def test_view_index_hot_path(benchmark):
    """Indexed lookups match the naive O(m) definition on dense traffic."""
    n = 64
    view = _dense_view(n)

    def workload():
        # One adversary round's worth of queries: every singleton plus a
        # handful of larger target sets.
        total = 0
        for pid in range(n):
            total += len(view.message_indices_touching({pid}))
        for width in (2, 4, 8, 16):
            total += len(view.message_indices_from(range(width)))
            total += len(view.message_indices_to(range(width)))
        return total

    total = benchmark.pedantic(workload, rounds=1, iterations=1)
    messages = view.messages
    for pid in (0, n // 2, n - 1):
        naive = frozenset(
            index
            for index, message in enumerate(messages)
            if pid in (message.sender, message.recipient)
        )
        assert view.message_indices_touching({pid}) == naive
    assert total > 0
    print_series(
        f"view-index queries over {len(messages)} messages",
        ["n", "messages", "query hits"],
        [[n, len(messages), total]],
    )
