"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (Table 1, Figures 1-3, or a
theorem's predicted curve) and prints the reproduced rows/series.  Run with

    pytest benchmarks/ --benchmark-only -s

to see the tables.  Timing uses ``benchmark.pedantic`` with a single
iteration: the interesting measurements are the protocol's *metered*
complexities (rounds / bits / random bits), not wall-clock microseconds.
"""

from __future__ import annotations


def print_series(title: str, header: list[str], rows: list[list[object]]) -> None:
    """Uniform plain-text rendering of a reproduced table/series."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(str(row[i])) for row in rows), default=0))
        for i in range(len(header))
    ]
    print("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(cell).rjust(w) for cell, w in zip(row, widths)))
