"""E-TRB — related-work primitive [34]: early-stopping TRB round counts.

Roşu's early-stopping terminating reliable broadcast terminates in rounds
proportional to the *actual* number of failures f, not the budget t.  This
bench measures the shape: fault-free instances stop in O(1) rounds for any
budget, and the cost climbs only as real faults accumulate, capped by the
t+2 horizon.
"""

from conftest import print_series

from repro.adversary import SilenceAdversary, StaticCrashAdversary
from repro.baselines import run_trb


def test_rounds_independent_of_budget_without_faults(benchmark):
    def workload():
        return [
            (t, run_trb(32, 0, 9, t, seed=11).result.time_to_agreement())
            for t in (1, 3, 6, 9)
        ]

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series(
        "fault-free TRB rounds vs budget t (n=32)",
        ["t", "rounds"],
        rows,
    )
    rounds = [r for _, r in rows]
    assert len(set(rounds)) == 1
    assert rounds[0] <= 6


def test_rounds_track_actual_failures(benchmark):
    """Crash a chain of relays including the sender: each actual fault can
    buy the adversary at most ~one extra round."""

    def workload():
        t = 8
        n = 40
        rows = []
        for f in (0, 1, 2, 4, 8):
            # Crash the sender at round 1 (after a partial broadcast would
            # be possible) and further processes in consecutive rounds.
            schedule = {k: [k] for k in range(f)}
            adversary = StaticCrashAdversary(schedule) if f else None
            result = run_trb(
                n, sender=0, value=3, t=t, adversary=adversary, seed=12
            ).result
            values = set(result.non_faulty_decisions().values())
            rows.append([f, result.time_to_agreement(), sorted(values)])
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series(
        "TRB rounds vs actual failures f (n=40, t=8)",
        ["f", "rounds", "deliveries"],
        rows,
    )
    fault_free = rows[0][1]
    worst = max(r for _, r, _ in rows)
    assert fault_free <= 6
    assert worst <= 8 + 4  # bounded by the t+2 horizon + wind-down
    for _, _, deliveries in rows:
        assert len(deliveries) == 1  # agreement in every configuration


def test_faulty_sender_consistency(benchmark):
    def workload():
        outcomes = []
        for seed in range(5):
            result = run_trb(
                32, sender=0, value=9, t=4,
                adversary=SilenceAdversary([0]), seed=seed,
            ).result
            outcomes.append(
                sorted(set(result.non_faulty_decisions().values()))
            )
        return outcomes

    outcomes = benchmark.pedantic(workload, rounds=1, iterations=1)
    print(f"\ndeliveries with a silenced sender: {outcomes}")
    for values in outcomes:
        assert len(values) == 1
