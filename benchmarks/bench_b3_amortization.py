"""E-B3 — Appendix B.3: why crash-model amortization dies under omissions.

B.3's argument against porting [23]'s doubling strategies: a crashed
process stops and costs nothing more, but an omission-faulty process can be
kept "alive" — its requests delivered, its responses omitted — forcing the
full Theta(n) doubling escalation and charging every healthy process for
the answers.  "Even a single omission-faulty process may contribute
linearly to the communication complexity."

Measured via :mod:`repro.baselines.doubling_gossip`: n concurrent doubling
collectors; the adversary either crashes the victims or starves their
responses.
"""

from conftest import print_series

from repro.baselines import measure_amortization


def test_single_faulty_process_costs_linear(benchmark):
    """The headline sentence, literally: t = 1, and the healthy processes
    send ~n responses to the one starved collector (vs 0 under a crash)."""
    points = benchmark.pedantic(
        lambda: measure_amortization(128, 1, seed=3), rounds=1, iterations=1
    )
    rows = [
        [label, p.victim_requests, p.responses_to_victims]
        for label, p in points.items()
    ]
    print_series(
        "one faulty collector at n=128",
        ["adversary", "victim requests", "healthy responses to victim"],
        rows,
    )
    crash, omission = points["crash"], points["omission"]
    assert crash.responses_to_victims == 0
    assert omission.responses_to_victims == 127  # exactly n - 1
    assert omission.victim_requests == 127       # full doubling sweep


def test_omission_cost_scales_with_t_times_n(benchmark):
    def workload():
        rows = []
        for n, t in ((64, 2), (128, 4), (192, 6)):
            points = measure_amortization(n, t, seed=4)
            rows.append(
                [
                    n,
                    t,
                    points["crash"].responses_to_victims,
                    points["omission"].responses_to_victims,
                    t * (n - t),
                ]
            )
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series(
        "forced responses to faulty collectors (healthy senders only)",
        ["n", "t", "crash", "omission", "t(n-t)"],
        rows,
    )
    for row in rows:
        n, t, crash_cost, omission_cost, bound = row
        assert crash_cost == 0
        assert omission_cost == bound


def test_escalation_vs_quorum_stop(benchmark):
    """Fault-free collectors stop at their quorum wave; starved collectors
    sweep the whole system — the Theta(n) blow-up B.3 describes."""
    points = benchmark.pedantic(
        lambda: measure_amortization(256, 4, seed=5), rounds=1, iterations=1
    )
    none, omission = points["none"], points["omission"]
    print(
        f"\nrequests per collector at n=256: fault-free stops at "
        f"{none.victim_requests}, starved sweeps {omission.victim_requests}"
    )
    assert omission.victim_requests == 255
    assert none.victim_requests <= 150
