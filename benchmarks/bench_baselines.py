"""E-BASE — Section 1 / B.3 comparison: Algorithm 1 vs the baselines.

The paper's headline: against adaptive omissions the best previous solution
was Dolev-Strong's 40-year-old O(t)-round protocol; Algorithm 1 brings time
to ~sqrt(n) polylog at the same ~n^2-bit communication scale.  This bench
measures all three deterministic/randomized comparators on the same
workload and reports the who-wins table, including where the round-count
crossover falls.
"""

from conftest import print_series

from repro.analysis import (
    loglog_slope,
    measure_ben_or,
    measure_consensus_scaling,
    measure_dolev_strong,
    measure_phase_king,
)

NS = [36, 64, 100, 144]


def test_rounds_comparison(benchmark):
    def workload():
        algorithm1 = measure_consensus_scaling(NS, seed=31)
        dolev_strong = measure_dolev_strong(NS, fault_fraction=8, seed=31)
        phase_king = measure_phase_king(NS, fault_fraction=8, seed=31)
        ben_or = measure_ben_or(NS, fault_fraction=8, seed=31)
        return algorithm1, dolev_strong, phase_king, ben_or

    algorithm1, dolev_strong, phase_king, ben_or = benchmark.pedantic(
        workload, rounds=1, iterations=1
    )
    rows = []
    for a, d, p, b in zip(algorithm1, dolev_strong, phase_king, ben_or):
        rows.append([a.n, a.rounds, d.rounds, p.rounds, b.rounds])
    print_series(
        "rounds: Algorithm 1 vs deterministic baselines vs voting (crash)",
        ["n", "Alg 1", "Dolev-Strong", "phase-king", "BJBO-style"],
        rows,
    )

    # Shape: baselines grow linearly in t (n/8 here); Algorithm 1 polylog-
    # sublinearly.  Compare growth factors across the sweep.
    a_growth = algorithm1[-1].rounds / algorithm1[0].rounds
    d_growth = dolev_strong[-1].rounds / dolev_strong[0].rounds
    p_growth = phase_king[-1].rounds / phase_king[0].rounds
    print(
        f"\nrounds growth over n x{NS[-1] / NS[0]:.0f}: "
        f"Alg1 x{a_growth:.2f}, DS x{d_growth:.2f}, PK x{p_growth:.2f}"
    )
    assert a_growth < d_growth
    assert a_growth < p_growth


def test_bits_comparison(benchmark):
    def workload():
        algorithm1 = measure_consensus_scaling(NS, seed=32)
        dolev_strong = measure_dolev_strong(NS, fault_fraction=8, seed=32)
        return algorithm1, dolev_strong

    algorithm1, dolev_strong = benchmark.pedantic(
        workload, rounds=1, iterations=1
    )
    rows = [
        [a.n, a.bits_sent, d.bits_sent, f"{d.bits_sent / a.bits_sent:.2f}"]
        for a, d in zip(algorithm1, dolev_strong)
    ]
    print_series(
        "communication bits: Algorithm 1 vs Dolev-Strong",
        ["n", "Alg 1 bits", "DS bits", "DS/Alg1"],
        rows,
    )
    # Dolev-Strong bits grow ~n^2 t (cubic in n at fixed fault density);
    # Algorithm 1 stays ~n^2 polylog: the ratio must widen with n.
    ratios = [d.bits_sent / a.bits_sent for a, d in zip(algorithm1, dolev_strong)]
    assert ratios[-1] > ratios[0]
    ds_slope = loglog_slope(NS, [d.bits_sent for d in dolev_strong])
    a1_slope = loglog_slope(NS, [a.bits_sent for a in algorithm1])
    print(f"\nbits slopes: DS ~ n^{ds_slope:.2f}, Alg1 ~ n^{a1_slope:.2f}")
    assert ds_slope > a1_slope


def test_rounds_crossover(benchmark):
    """Where the paper's win begins: at small n the t+1-round baseline is
    faster in absolute rounds; Algorithm 1's polylog growth must close the
    gap as n grows (the crossover the asymptotics promise)."""

    def workload():
        ns = [36, 144, 256]
        algorithm1 = measure_consensus_scaling(ns, seed=33)
        dolev_strong = measure_dolev_strong(ns, fault_fraction=4, seed=33)
        return ns, algorithm1, dolev_strong

    ns, algorithm1, dolev_strong = benchmark.pedantic(
        workload, rounds=1, iterations=1
    )
    rows = [
        [n, a.rounds, d.rounds, f"{a.rounds / d.rounds:.2f}"]
        for n, a, d in zip(ns, algorithm1, dolev_strong)
    ]
    print_series(
        "crossover tracker (t = n/4 for the baseline)",
        ["n", "Alg 1", "Dolev-Strong", "Alg1/DS"],
        rows,
    )
    relative = [a.rounds / d.rounds for a, d in zip(algorithm1, dolev_strong)]
    assert relative[-1] < relative[0], (
        "Algorithm 1 must gain on the t-linear baseline as n grows"
    )
