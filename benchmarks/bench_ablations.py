"""Ablations: which of the paper's design choices are load-bearing.

Four experiments, one per design choice DESIGN.md calls out:

1. **Epoch budget** (Lemma 10): the fallback probability decays
   geometrically with the number of biased-majority epochs — the paper's
   Theta(t/sqrt(n) log n) budget buys the whp guarantee.
2. **Threshold gap** (Figure 3): the 18/30-vs-15/30 adopt gap and the
   27/30 / 3/30 decide margins exceed the worst-case inoperative
   perturbation.  Narrowing them creates *deterministic* conflicting
   decisions between two views that differ only by tolerated knockouts.
3. **Spreading rounds** (Algorithm 3): with too few gossip rounds on a
   sparse overlay, operative counts are incomplete and the run leans on the
   expensive fallback.
4. **Overlay degree** (Theorem 4): a thinner spreading graph turns
   adversarial omissions into non-faulty inoperative processes.
"""

from conftest import print_series

from repro.adversary import RandomOmissionAdversary
from repro.analysis import fallback_rate_vs_epochs
from repro.core import apply_vote_rule, run_consensus
from repro.params import ProtocolParams
from repro.runtime import CountingRandom

PRACTICAL = ProtocolParams.practical()


def test_ablation_epoch_budget(benchmark):
    rates = benchmark.pedantic(
        lambda: fallback_rate_vs_epochs(
            48, epoch_counts=[1, 2, 4, 8], trials=12, seed=5
        ),
        rounds=1,
        iterations=1,
    )
    rows = [[epochs, str(estimate)] for epochs, estimate in rates]
    print_series(
        "fallback probability vs epoch budget (n=48, balanced inputs)",
        ["epochs", "fallback rate [95% CI]"],
        rows,
    )
    # Geometric decay: the 8-epoch rate must not exceed the 1-epoch rate,
    # and the 1-epoch rate must be substantial (one coin round rarely
    # suffices to also trigger the decide rule).
    first, last = rates[0][1], rates[-1][1]
    assert last.rate <= first.rate
    assert first.rate >= 0.5


def test_ablation_threshold_gap(benchmark):
    """Narrowing the 18/30-vs-15/30 adopt gap admits *deterministic* splits
    (one view adopts 1, a knockout-perturbed view adopts 0) — exactly what
    the Figure-3 geometry rules out for the paper's constants.  Such splits
    destroy Lemma 10's unification argument."""

    narrow = PRACTICAL.with_overrides(
        one_threshold_num=16,
        zero_threshold_num=15,
        decide_hi_num=27,
        decide_lo_num=3,
    )

    def deterministic_splits(params):
        splits = 0
        total = 300
        # Up to 4t processes can go inoperative during an epoch (Lemma 7),
        # i.e. ~2/15 of the counted values may vanish from one view.
        perturbation = (4 * total) // 30
        for ones in range(total + 1):
            view_a = apply_vote_rule(
                ones, total - ones, params, CountingRandom(1)
            )
            shift = min(perturbation, ones)
            view_b = apply_vote_rule(
                ones - shift, total - ones, params, CountingRandom(2)
            )
            if (
                not view_a.used_coin
                and not view_b.used_coin
                and view_a.bit != view_b.bit
            ):
                splits += 1
        return splits

    narrow_splits, paper_splits = benchmark.pedantic(
        lambda: (deterministic_splits(narrow), deterministic_splits(PRACTICAL)),
        rounds=1,
        iterations=1,
    )
    print(
        f"\ndeterministic adopt-splits under 4t-knockout perturbation: "
        f"paper thresholds {paper_splits}, narrowed thresholds "
        f"{narrow_splits}"
    )
    assert paper_splits == 0
    assert narrow_splits > 0


def test_ablation_spreading_rounds(benchmark):
    """The 2-log-n gossip budget is what makes every operative process see
    every surviving group's counts (Lemma 6).  With one round on a sparse
    overlay, coverage collapses to the direct neighbourhood."""

    from repro.core.spreading import SpreadingState, group_bits_spreading
    from repro.graphs import spreading_graph
    from repro.runtime import SyncNetwork, SyncProcess

    class Harness(SyncProcess):
        def __init__(self, pid, n, graph, rounds):
            super().__init__(pid, n)
            self.graph = graph
            self.rounds = rounds

        def program(self, env):
            state = SpreadingState(
                neighbors=tuple(sorted(self.graph.neighbors(self.pid)))
            )
            result = yield from group_bits_spreading(
                env, state, group_count=self.n, my_group=self.pid,
                my_counts=(1, 0), rounds=self.rounds, degree_threshold=1,
            )
            env.decide(sum(1 for pack in result.packs if pack is not None))
            return None

    def coverage(rounds):
        n = 100
        graph = spreading_graph(n, 8, seed=4)
        network = SyncNetwork(
            [Harness(pid, n, graph, rounds) for pid in range(n)], seed=4
        )
        result = network.run()
        learned = list(result.decisions.values())
        return sum(learned) / (n * n)  # fraction of slots known system-wide

    def workload():
        return [(rounds, coverage(rounds)) for rounds in (1, 2, 4, 14)]

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series(
        "slot coverage vs spreading rounds (n=100, Delta=8 overlay)",
        ["rounds", "coverage"],
        [[rounds, f"{fraction:.3f}"] for rounds, fraction in rows],
    )
    fractions = dict(rows)
    assert fractions[1] < 0.25          # one round: neighbourhood only
    assert fractions[14] > 0.999        # 2 log n rounds: everything
    assert fractions[2] < fractions[4] <= fractions[14]


def test_ablation_overlay_degree(benchmark):
    """Thinner overlays turn the same omission noise into more non-faulty
    inoperative processes (the Theorem-4 degree is what buys Lemma 7)."""

    def inoperative_counts():
        rows = []
        for delta_factor, delta_min in ((1, 4), (2, 6), (4, 6)):
            params = PRACTICAL.with_overrides(
                delta_factor=delta_factor, delta_min=delta_min
            )
            non_faulty_inoperative = 0
            trials = 3
            for seed in range(trials):
                run = run_consensus(
                    [pid % 2 for pid in range(100)],
                    t=3,
                    params=params,
                    adversary=RandomOmissionAdversary(0.9, seed=seed),
                    seed=700 + seed,
                )
                assert run.decision in (0, 1)
                non_faulty_inoperative += sum(
                    1
                    for process in run.processes
                    if not process.operative
                    and process.pid not in run.result.faulty
                )
            delta = params.delta(100)
            rows.append([delta_factor, delta, non_faulty_inoperative, trials])
        return rows

    rows = benchmark.pedantic(inoperative_counts, rounds=1, iterations=1)
    print_series(
        "non-faulty inoperative processes vs overlay degree "
        "(n=100, t=3, heavy omission noise)",
        ["delta factor", "Delta", "nf-inoperative (sum)", "trials"],
        rows,
    )
    thinnest, thickest = rows[0], rows[-1]
    assert thinnest[2] >= thickest[2]
