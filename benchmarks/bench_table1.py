"""E-T1 — Table 1: the paper's main results table, measured.

Regenerates every row of Table 1 at a concrete system size: measured
rounds / communication bits / random bits for Theorem 1 (Algorithm 1) and
Theorem 3 (Algorithm 4), and the numeric values of the three lower-bound
rows ([10], [1], Theorem 2) at the same (n, t).
"""

from conftest import print_series

from repro.analysis import render_table, table1
from repro.analysis.theory import (
    abraham_messages,
    bar_joseph_ben_or_rounds,
    theorem2_product,
)
from repro.core import run_consensus
from repro.params import ProtocolParams

N = 144
PARAMS = ProtocolParams.practical()


def test_table1_rows(benchmark):
    rows = benchmark.pedantic(
        lambda: table1(n=N, params=PARAMS, seed=7), rounds=1, iterations=1
    )
    print()
    print(render_table(rows))


def test_table1_lower_bound_rows_vs_measured(benchmark):
    """The measured upper-bound run must dominate every lower-bound row."""

    def workload():
        t = PARAMS.max_faults(N)
        run = run_consensus(
            [pid % 2 for pid in range(N)], t=t, params=PARAMS, seed=8
        )
        return run, t

    run, t = benchmark.pedantic(workload, rounds=1, iterations=1)
    rounds = run.result.time_to_agreement()
    messages = run.metrics.messages_sent
    product = rounds * (run.metrics.random_calls + rounds)

    rows = [
        ["[10] rounds", f"{bar_joseph_ben_or_rounds(N, t):.2f}",
         rounds, rounds >= bar_joseph_ben_or_rounds(N, t)],
        ["[1] messages", f"{abraham_messages(t):.0f}",
         messages, messages >= abraham_messages(t)],
        ["Thm 2 product", f"{theorem2_product(N, t):.1f}",
         product, product >= theorem2_product(N, t)],
    ]
    print_series(
        f"Table 1 lower-bound rows at n={N}, t={t}",
        ["bound", "required", "measured", "holds"],
        rows,
    )
    assert all(row[3] for row in rows)
