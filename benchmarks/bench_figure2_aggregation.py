"""E-F2 — Figure 2: binary-tree intra-group aggregation (Algorithm 2).

Figure 2 depicts one group's 3-round relay up the bag tree.  This bench
measures a single ``GroupBitsAggregation`` execution per group size: round
count 3*ceil(log2 m), per-group bits (the paper's Lemma 2: O(n log^2 n) per
group, i.e. ~m^2 polylog for group size m), and count exactness with and
without silenced members.
"""

from conftest import print_series

from repro.adversary import SilenceAdversary
from repro.core import cached_bag_tree
from repro.core.aggregation import group_bits_aggregation
from repro.params import ProtocolParams
from repro.runtime import SyncNetwork, SyncProcess

GROUP_SIZES = [4, 8, 16, 32, 64]
PARAMS = ProtocolParams.practical()


class Harness(SyncProcess):
    def __init__(self, pid, n, bit):
        super().__init__(pid, n)
        self.bit = bit

    def program(self, env):
        group = tuple(range(self.n))
        tree = cached_bag_tree(group)
        result = yield from group_bits_aggregation(
            env, group, tree, True, self.bit, PARAMS, tree.num_stages
        )
        env.decide((result.ones, result.zeros, result.operative))
        return None


def run_group(m, adversary=None, t=0, seed=0):
    processes = [Harness(pid, m, pid % 2) for pid in range(m)]
    network = SyncNetwork(processes, adversary=adversary, t=t, seed=seed)
    return network.run()


def test_aggregation_rounds_and_bits(benchmark):
    def workload():
        rows = []
        for m in GROUP_SIZES:
            result = run_group(m)
            tree = cached_bag_tree(tuple(range(m)))
            rows.append(
                [
                    m,
                    result.rounds,
                    3 * tree.num_stages,
                    result.metrics.bits_sent,
                    result.metrics.messages_sent,
                ]
            )
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series(
        "Figure 2: one aggregation per group size",
        ["m", "rounds", "3 ceil(lg m)", "bits", "messages"],
        rows,
    )
    for row in rows:
        assert row[1] == row[2]  # exactly 3 rounds per tree stage
    # Lemma-2 shape: bits per group grow ~m^2 polylog (sources x
    # transmitters per stage), i.e. much slower than m^3.
    small, large = rows[0], rows[-1]
    growth = large[3] / small[3]
    size_growth = large[0] / small[0]
    print(f"\nbits growth x{growth:.1f} over m x{size_growth:.0f} "
          f"(m^2 polylog predicts ~x{size_growth**2:.0f} * logs)")
    assert growth < size_growth**3


def test_aggregation_exactness(benchmark):
    def workload():
        rows = []
        for m in GROUP_SIZES:
            result = run_group(m)
            counted = result.decisions[0]
            rows.append([m, counted[0], counted[1], m // 2, (m + 1) // 2])
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series(
        "operative counts vs ground truth (no faults)",
        ["m", "ones", "zeros", "true ones", "true zeros"],
        rows,
    )
    for row in rows:
        assert row[1] == row[3] and row[2] == row[4]


def test_aggregation_with_silenced_minority(benchmark):
    """Silencing a minority perturbs counts by at most the knockouts —
    the Lemma-1/2 guarantee that feeds Figure 3's threshold gap."""

    def workload():
        rows = []
        for m in (16, 32, 64):
            silenced = max(1, m // 8)
            result = run_group(
                m, adversary=SilenceAdversary(range(silenced)), t=silenced,
                seed=m,
            )
            operative = [
                value for value in result.decisions.values() if value[2]
            ]
            totals = [ones + zeros for ones, zeros, _ in operative]
            knocked = m - len(operative)
            rows.append(
                [m, silenced, len(operative), min(totals), max(totals), knocked]
            )
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series(
        "counts under silenced minority",
        ["m", "silenced", "operative", "min total", "max total", "knocked"],
        rows,
    )
    for row in rows:
        # Spread between operative views bounded by the knockouts.
        assert row[4] - row[3] <= row[5]
