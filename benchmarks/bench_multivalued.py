"""E-MV — extension: multi-valued consensus cost and strong validity.

The binary→multi-valued reduction costs one fixed-length binary consensus
plus one witness round per value bit.  This bench measures the linear-in-
width round scaling and verifies strong validity (the decided value is an
actual input) across random proposal sets and adversaries.
"""

import random

from conftest import print_series

from repro.adversary import SilenceAdversary
from repro.core import run_multivalued_consensus

N = 33


def test_rounds_linear_in_value_width(benchmark):
    def workload():
        rows = []
        for bits in (1, 2, 4, 8):
            result = run_multivalued_consensus(
                [pid % (1 << bits) for pid in range(N)],
                value_bits=bits,
                seed=41,
            ).result
            rows.append(
                [bits, result.time_to_agreement(), result.metrics.bits_sent]
            )
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series(
        f"multi-valued consensus cost vs value width (n={N})",
        ["value bits", "rounds", "comm bits"],
        rows,
    )
    # Linear scaling: doubling the width about doubles the rounds.
    per_bit = [r / bits for bits, r, _ in rows]
    assert max(per_bit) / min(per_bit) < 1.6


def test_strong_validity_across_workloads(benchmark):
    def workload():
        rng = random.Random(42)
        outcomes = []
        for trial in range(4):
            proposals = [rng.randrange(1, 16) for _ in range(N)]
            adversary = SilenceAdversary([trial]) if trial % 2 else None
            result = run_multivalued_consensus(
                proposals,
                value_bits=4,
                adversary=adversary,
                t=1,
                seed=50 + trial,
            ).result
            decision = result.agreement_value()
            outcomes.append(
                [trial, decision, decision in proposals]
            )
        return outcomes

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series(
        "strong validity: decided value is a real proposal",
        ["trial", "decision", "is an input"],
        rows,
    )
    assert all(row[2] for row in rows)
