"""E-TH3 — Theorem 3/8: the time-for-randomness interpolation.

Sweeps Algorithm 4's super-process count x at fixed n and regenerates the
trade-off curve: random bits fall from ~n^{3/2} scale (x=1) to 0 (x=n)
while rounds grow ~sqrt(nx), communication stays ~n^2-scale, and the
Theorem-8 invariant ROUNDS x RANDOMNESS stays within polylog of flat.
"""

from conftest import print_series

from repro.analysis import loglog_slope
from repro.core import sweep_tradeoff

N = 64
XS = [1, 2, 4, 8, 16, 32, 64]


def test_tradeoff_curve(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_tradeoff(
            [pid % 2 for pid in range(N)], XS, seed=21
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [p.x, p.rounds, p.random_bits, p.random_calls, p.bits_sent, p.decision]
        for p in points
    ]
    print_series(
        f"Theorem 3 trade-off at n={N}",
        ["x", "rounds T", "rand bits R", "calls", "comm bits", "decision"],
        rows,
    )

    rounds = [p.rounds for p in points]
    randomness = [p.random_bits for p in points]
    # The dial: T lowest at x=1 and rising through the sweep (the very tail
    # may dip because 2-member sub-runs cost more rounds per phase than
    # singleton phases — a granularity effect, not a trend reversal);
    # R peaks at x=1 and hits exactly zero at x=n.
    assert rounds[0] == min(rounds)
    assert all(a <= b for a, b in zip(rounds[:4], rounds[1:5]))
    assert max(rounds) > 4 * rounds[0]
    assert randomness[0] == max(randomness)
    assert randomness[-1] == 0
    assert all(r <= randomness[0] // 2 for r in randomness[3:])

    # Rounds ~ sqrt(nx): slope of T against x near 0.5 in the log-log plot.
    slope = loglog_slope(XS, rounds)
    print(f"\nrounds ~ x^{slope:.2f} (Theorem 8 predicts ~0.5)")
    assert 0.3 < slope < 0.8

    # Communication never blows past ~n^2 polylog scale: compare extremes.
    bits = [p.bits_sent for p in points]
    print(f"comm bits spread max/min = {max(bits) / min(bits):.1f} "
          "(stays within polylog factors)")
    assert max(bits) / min(bits) < 32


def test_invariant_T_times_R(benchmark):
    """Theorem 8: ROUNDS x RANDOMNESS ~ n^2 polylog, flat across x (for the
    randomized regime; the deterministic endpoint leaves the curve)."""
    points = benchmark.pedantic(
        lambda: sweep_tradeoff(
            [pid % 2 for pid in range(N)], [1, 2, 4, 8, 16], seed=22
        ),
        rounds=1,
        iterations=1,
    )
    rows = []
    products = []
    for p in points:
        product = p.rounds * max(1, p.random_bits)
        products.append(product)
        rows.append([p.x, p.rounds, p.random_bits, product])
    print_series(
        "Theorem 8 invariant T x R",
        ["x", "T", "R", "T*R"],
        rows,
    )
    spread = max(products) / min(products)
    print(f"\ninvariant spread max/min = {spread:.1f} (flat within polylog)")
    assert spread < 16


def test_endpoints_match_regimes(benchmark):
    """x=1 reproduces Algorithm 1's randomized regime; x=n is deterministic
    round-robin — the two extremes of the paper's interpolation."""
    points = benchmark.pedantic(
        lambda: sweep_tradeoff([pid % 2 for pid in range(N)], [1, N], seed=23),
        rounds=1,
        iterations=1,
    )
    randomized, deterministic = points
    print(
        f"\nx=1: T={randomized.rounds}, R={randomized.random_bits}; "
        f"x={N}: T={deterministic.rounds}, R={deterministic.random_bits}"
    )
    assert randomized.random_bits > 0
    assert deterministic.random_bits == 0
    assert deterministic.rounds > 4 * randomized.rounds
