"""E-TH2 — Theorem 2: why a lot of randomness is needed.

Three measurable pieces of the lower bound:

1. Lemma 12 (coin-flipping game): minimal hide budgets scale like sqrt(k)
   and stay below ``8 sqrt(k log 1/alpha)``;
2. Theorem 6 (Talagrand): the concentration inequality the proof leans on,
   verified exactly on threshold sets;
3. Theorem 2's product: against the balancing adversary, the measured
   ``T x (R + T)`` of a randomness-throttled voting protocol never drops
   below ``t^2 / log2 n``, and throttling randomness inflates T.
"""

from conftest import print_series

from repro.analysis import loglog_slope
from repro.lowerbound import (
    measure_tradeoff_product,
    sweep_lemma12,
    verify_threshold_inequality,
)


def test_lemma12_hide_budgets(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_lemma12(
            [64, 256, 1024, 4096], [0.25, 0.05], trials=1200
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [p.k, p.alpha, p.measured_budget, f"{p.lemma12_bound:.1f}",
         f"{p.ratio:.3f}"]
        for p in points
    ]
    print_series(
        "Lemma 12: minimal hides to bias the coin game",
        ["k", "alpha", "measured", "8 sqrt(k lg 1/a)", "ratio"],
        rows,
    )
    assert all(p.measured_budget <= p.lemma12_bound for p in points)
    quarter = [p for p in points if p.alpha == 0.25]
    slope = loglog_slope(
        [p.k for p in quarter], [max(1, p.measured_budget) for p in quarter]
    )
    print(f"\nmeasured budget ~ k^{slope:.2f} (Lemma 12 predicts 0.5)")
    assert 0.3 < slope < 0.7


def test_talagrand_inequality_grid(benchmark):
    checks = benchmark.pedantic(
        lambda: verify_threshold_inequality(
            [16, 64, 256, 1024], [0.25, 0.5, 1.0, 2.0, 4.0]
        ),
        rounds=1,
        iterations=1,
    )
    violations = [check for check in checks if not check.holds]
    tight = max(
        (check.lhs / check.rhs for check in checks if check.rhs > 0),
    )
    print(
        f"\nTalagrand grid: {len(checks)} points, {len(violations)} "
        f"violations, tightest lhs/rhs = {tight:.3f}"
    )
    assert violations == []


def test_product_lower_bound_under_attack(benchmark):
    n, t = 48, 12
    points = benchmark.pedantic(
        lambda: measure_tradeoff_product(
            n, t, [0, 4, 12, 24, 48], seed=9, max_phases=250
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [p.coin_processes, p.rounds, p.random_calls, p.product,
         f"{p.normalized:.1f}", p.agreement_ok]
        for p in points
    ]
    print_series(
        f"Theorem 2 product at n={n}, t={t} (reference t^2/lg n = "
        f"{points[0].reference:.1f})",
        ["k coins", "T", "R", "T(R+T)", "norm", "agreed"],
        rows,
    )
    # The bound: no configuration beats t^2 / log n.
    assert all(p.normalized >= 1.0 for p in points)
    # The shape: cutting randomness to zero costs the most time.
    assert points[0].rounds >= max(p.rounds for p in points[1:])
    # Full randomness escapes the adversary quickly.
    assert points[-1].rounds < points[0].rounds
