"""E-CC — the content-addressed cell cache: warm re-runs cost ~nothing.

The acceptance bar for the fabric cache: a warm re-run of a sweep serves
100% of its cells from the store and finishes at least an order of
magnitude faster than the cold run that populated it — while producing
byte-identical records.
"""

import json
import time

from conftest import print_series

from repro.analysis.campaign import CampaignSpec, run_campaign
from repro.fabric import CampaignCache

SPEC = CampaignSpec(
    name="bench-fabric-cache",
    protocol="algorithm1",
    ns=[33, 48, 64],
    adversaries=["none", "silence"],
    seeds=[0, 1],
)


def test_warm_cache_speedup(benchmark, tmp_path):
    cache = CampaignCache(tmp_path / "cache")
    start = time.perf_counter()
    cold = run_campaign(SPEC, cache=cache)
    cold_seconds = time.perf_counter() - start

    warm_cache = CampaignCache(tmp_path / "cache")
    computed = []

    def warm_run():
        return run_campaign(
            SPEC, cache=warm_cache, on_record=computed.append
        )

    start = time.perf_counter()
    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    warm_seconds = time.perf_counter() - start

    cells = len(cold)
    assert computed == []  # 100% of cells served from the cache
    assert warm_cache.stats.hits == cells
    assert json.dumps(warm, sort_keys=True) == json.dumps(
        cold, sort_keys=True
    )
    speedup = cold_seconds / warm_seconds
    assert speedup >= 10.0, (
        f"warm cache run only {speedup:.1f}x faster than cold "
        f"({warm_seconds:.3f}s vs {cold_seconds:.3f}s)"
    )
    print_series(
        f"content-addressed cache: {cells} cells, warm {speedup:.0f}x cold",
        ["pass", "seconds", "computed", "served from cache"],
        [
            ["cold", f"{cold_seconds:.3f}", cells, 0],
            ["warm", f"{warm_seconds:.3f}", 0, cells],
        ],
    )
