"""E-HARNESS — observer-bus overhead on an all-to-all workload.

The observer bus moved the engine's own metrics accounting, tracing, and
profiling onto a uniform hook sequence dispatched every round.  This bench
quantifies what that dispatch costs on the heaviest traffic shape the
repository has — the Ben-Or baseline at n = 256, where every round carries
n^2 broadcast messages — by running the identical workload unobserved and
with a TraceRecorder + RoundProfiler attached.

The acceptance target is < 5% added wall time for attached observers.
Timing noise at second-scale runs is real, so the repetitions of the two
configurations are interleaved (back-to-back blocks would fold thermal /
frequency drift into the comparison) and each side keeps its best time —
the standard way to strip scheduler jitter from a deterministic workload.
The hard assertion keeps a generous margin; the printed table carries the
precise numbers.
"""

from __future__ import annotations

import time

from conftest import print_series

from repro.harness import RoundProfiler, TraceRecorder, execute

N = 256
PHASES = 8
REPEATS = 4


def _workload(observed: bool):
    inputs = [pid % 2 for pid in range(N)]
    observers = (
        (TraceRecorder(probe=None), RoundProfiler()) if observed else ()
    )
    started = time.perf_counter()
    run = execute(
        "ben-or",
        inputs,
        seed=9,
        max_phases=PHASES,
        observers=observers,
    )
    elapsed = time.perf_counter() - started
    return run, elapsed


def test_observer_bus_overhead(benchmark):
    def workload():
        plain, observed = [], []
        for _ in range(REPEATS):
            plain.append(_workload(False))
            observed.append(_workload(True))
        return plain, observed

    plain, observed = benchmark.pedantic(workload, rounds=1, iterations=1)

    base_run = plain[0][0]
    obs_run = observed[0][0]
    # Observers never perturb the execution.
    assert obs_run.result.decisions == base_run.result.decisions
    assert obs_run.metrics.summary() == base_run.metrics.summary()

    best_plain = min(elapsed for _, elapsed in plain)
    best_observed = min(elapsed for _, elapsed in observed)
    overhead = best_observed / best_plain - 1.0

    print_series(
        f"observer-bus overhead (ben-or, n={N}, {base_run.metrics.rounds} "
        f"rounds, {base_run.metrics.messages_sent} messages)",
        ["config", "best wall (s)", "overhead"],
        [
            ["unobserved", f"{best_plain:.3f}", "-"],
            [
                "trace+profile",
                f"{best_observed:.3f}",
                f"{100 * overhead:+.2f}%",
            ],
        ],
    )

    # Target < 5%; assert with headroom so CI jitter cannot flake the
    # suite while a real regression (per-message work in an observer
    # hook, which would show up as tens of percent here) still fails.
    assert overhead < 0.15, (
        f"observer bus overhead {100 * overhead:.1f}% exceeds budget"
    )
