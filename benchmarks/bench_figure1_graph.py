"""E-F1 / E-TH4 — Figure 1's sparse overlay graph and Theorem 4's properties.

Figure 1 depicts the two communication structures: the sqrt(n)-group
decomposition and the sparse random overlay graph.  This bench regenerates
the overlay's measurable facts across n: construction cost, degree
concentration, expansion / edge-sparsity certification, and the Lemma-4
robust core surviving adversarial removals (the graph-theoretic heart of the
operative/inoperative partition).
"""

import math

from conftest import print_series

from repro.core import cached_sqrt_partition
from repro.graphs import (
    is_edge_sparse,
    is_expanding,
    robust_core,
    spreading_graph,
    subgraph_diameter,
)
from repro.params import ProtocolParams

NS = [256, 512, 1024, 2048, 4096]
PARAMS = ProtocolParams.practical()


def test_overlay_construction_and_degree_concentration(benchmark):
    def workload():
        rows = []
        for n in NS:
            delta = PARAMS.delta(n)
            graph = spreading_graph(n, delta, seed=1)
            degrees = [graph.degree(v) for v in range(n)]
            rows.append(
                [
                    n,
                    delta,
                    graph.edge_count,
                    min(degrees),
                    f"{2 * graph.edge_count / n:.1f}",
                    max(degrees),
                ]
            )
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series(
        "Figure 1 overlay: R(n, Delta/(n-1)) degree profile",
        ["n", "Delta", "edges", "min deg", "avg deg", "max deg"],
        rows,
    )
    for row in rows:
        n, delta = row[0], row[1]
        # Average degree tracks Delta; min degree stays above Delta/3 (the
        # operative threshold) — the property the protocol needs.
        assert float(row[4]) > 0.8 * delta
        assert row[3] > delta // 3


def test_theorem4_certification(benchmark):
    def workload():
        rows = []
        for n in (256, 512, 1024):
            delta = PARAMS.delta(n)
            graph = spreading_graph(n, delta, seed=2)
            expanding = is_expanding(graph, n // 10, samples=150, seed=2)
            # At simulable Delta the paper's alpha = Delta/15 concentration
            # needs Delta = 832 log n; certify the relaxed alpha = Delta/2
            # form that the Lemma-4 peeling actually consumes.
            sparse = is_edge_sparse(
                graph, n // 10, alpha=delta / 2, samples=150, seed=2
            )
            rows.append([n, delta, expanding, sparse])
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series(
        "Theorem 4 certification (expansion + relaxed edge-sparsity)",
        ["n", "Delta", "(n/10)-expanding", "edge-sparse"],
        rows,
    )
    assert all(row[2] and row[3] for row in rows)


def test_lemma4_robust_core_under_removals(benchmark):
    """Remove n/15 adversarially-chosen vertices; the surviving core must
    keep >= n - 4/3|T| members of degree >= Delta/3 and stay shallow."""

    def workload():
        rows = []
        for n in (512, 1024, 2048):
            delta = PARAMS.delta(n)
            graph = spreading_graph(n, delta, seed=3)
            # Adversarial removal: the heaviest vertices (hub attack).
            removed = sorted(
                range(n), key=graph.degree, reverse=True
            )[: n // 15]
            core = robust_core(graph, removed, delta // 3)
            diameter = subgraph_diameter(graph, core) if n <= 1024 else -2
            rows.append(
                [n, len(removed), len(core), n - 4 * len(removed) // 3,
                 diameter, math.ceil(2 * math.log2(n))]
            )
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series(
        "Lemma 4 robust core after hub removals",
        ["n", "|T|", "core", ">= n-4|T|/3", "diameter", "2 log n"],
        rows,
    )
    for row in rows:
        assert row[2] >= row[3]
        if row[4] >= 0:
            assert row[4] <= row[5]


def test_sqrt_decomposition_shape(benchmark):
    def workload():
        rows = []
        for n in NS:
            partition = cached_sqrt_partition(n)
            sizes = [len(group) for group in partition.groups]
            rows.append(
                [n, partition.group_count, min(sizes), max(sizes),
                 math.isqrt(n)]
            )
        return rows

    rows = benchmark.pedantic(workload, rounds=1, iterations=1)
    print_series(
        "Figure 1 groups: sqrt(n)-decomposition",
        ["n", "groups", "min size", "max size", "isqrt(n)"],
        rows,
    )
    for row in rows:
        n, groups, smallest, largest, root = row
        assert groups == math.isqrt(n) + (0 if root * root == n else 1)
        assert largest - smallest <= 1
